"""Dependency-aware execution planning: plan steps -> chains.

A :class:`~repro.scenarios.runner.ScenarioPlan` is a flat, ordered
list of steps, but not every step is independent: dedicated-tenancy
steps of one PipeTune policy all warm-start and grow the *same*
long-lived session (the per-policy ground-truth database), so they
form an ordered dependency chain — the session state a later step sees
is the one the earlier steps left behind. Everything else (other
policies' jobs, fixed trials, multi-tenant traces, analysis routines)
runs on a fresh environment and a fresh or private session, so each
such step is a chain of its own.

:func:`partition` computes that decomposition. It is the scheduling
contract of every execution backend: a backend may run different
chains concurrently and in any order, but must run the steps *within*
one chain in order, against one shared session. Because the random
streams are counter-keyed on spec reprs and trial ids (PR 3) rather
than on draw order, inter-chain ordering cannot leak into results —
which is what makes :class:`~repro.scenarios.backends.
ProcessPoolBackend` bit-identical to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .runner import JobStep, ScenarioPlan, Step
from .spec import SystemPolicySpec


def chain_policy(step: Step) -> Optional[SystemPolicySpec]:
    """The policy whose shared session this step depends on, if any.

    Only dedicated-tenancy job steps of a ``pipetune`` policy touch a
    session that outlives their own step: the runner shares one
    session per pipetune policy across every such step. Trace steps
    deliberately get a private session per trace and everything else
    never opens one, so they carry no cross-step dependency.
    """
    if isinstance(step, JobStep) and step.policy.kind == "pipetune":
        return step.policy
    return None


@dataclass(frozen=True)
class ExecutionChain:
    """An ordered run of steps that must execute sequentially.

    ``indices`` are positions in the originating plan's step tuple, in
    plan order; outcomes are merged back at exactly these positions
    (:func:`~repro.scenarios.merge.merge_outcomes`), which is why the
    collect phase never notices how chains were scheduled.
    """

    index: int  # chain number, ordered by first step
    indices: Tuple[int, ...]
    steps: Tuple[Step, ...]
    #: True when the steps share one long-lived PipeTune session.
    shares_session: bool

    def __post_init__(self):
        if len(self.indices) != len(self.steps) or not self.steps:
            raise ValueError("chain needs one index per step")
        if list(self.indices) != sorted(self.indices):
            raise ValueError("chain indices must be in plan order")

    @property
    def label(self) -> str:
        kind = "session chain" if self.shares_session else "independent"
        return f"chain {self.index} ({len(self.steps)} step(s), {kind})"

    def describe(self) -> List[str]:
        return [f"{self.label}:"] + [
            f"  [{i}] {step.describe()}" for i, step in zip(self.indices, self.steps)
        ]


def partition(plan: ScenarioPlan) -> Tuple[ExecutionChain, ...]:
    """Split a plan into its execution chains, ordered by first step.

    Steps that share a PipeTune session group into one chain keeping
    their relative plan order; every other step is a singleton chain.
    The union of all chain indices is exactly ``range(len(steps))``
    with no overlaps — merge relies on it.
    """
    grouped: Dict[SystemPolicySpec, List[int]] = {}
    ordered: List[List[int]] = []
    for position, step in enumerate(plan.steps):
        policy = chain_policy(step)
        if policy is None:
            ordered.append([position])
            continue
        existing = grouped.get(policy)
        if existing is None:
            existing = grouped[policy] = [position]
            ordered.append(existing)
        else:
            existing.append(position)
    shared = {id(indices) for indices in grouped.values()}
    return tuple(
        ExecutionChain(
            index=number,
            indices=tuple(indices),
            steps=tuple(plan.steps[i] for i in indices),
            shares_session=id(indices) in shared,
        )
        for number, indices in enumerate(ordered)
    )


def chain_of_step(
    chains: Tuple[ExecutionChain, ...],
) -> Dict[int, ExecutionChain]:
    """{plan step position -> its chain} for presentation layers."""
    lookup: Dict[int, ExecutionChain] = {}
    for chain in chains:
        for position in chain.indices:
            lookup[position] = chain
    return lookup
