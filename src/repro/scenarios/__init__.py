"""Declarative scenario API: one composable front door for experiments.

Declare *what* to run — workload x cluster x HPO algorithm x system
policy x objective x tenancy x failure injection x repetitions — as a
validated :class:`Scenario`; the :class:`ScenarioRunner` derives *how*
(spec construction, session sharing, execution order) through explicit
``plan -> validate -> execute -> collect`` phases. All 12 paper
exhibits and every novel experiment are entries in
:data:`SCENARIO_REGISTRY`; the CLI front end is
``repro scenario list|describe|run``.

Quick start::

    from repro.scenarios import Scenario, ScenarioRunner, pipetune, tune_v1

    scenario = (
        Scenario.builder("my-comparison")
        .workloads("lenet-mnist")
        .compare(tune_v1(), pipetune())
        .repetitions(2)
        .build()
    )
    table = ScenarioRunner(scenario).run(scale=1.0, seed=0)
    print(table.format_table())
"""

from .jobs import (
    HYPERBAND_ETA,
    HYPERBAND_MAX_EPOCHS,
    TRIAL_INIT_S,
    V2_SAMPLE_SCALE,
    V2_TRIAL_SETUP_S,
    execute_job,
    fresh_cluster,
    make_pipetune_session,
    make_pipetune_spec,
    make_v1_spec,
    make_v2_spec,
    mean,
    seeds_for,
    session_for_cluster,
)
from .registry import (
    SCENARIO_REGISTRY,
    ScenarioDefinition,
    get_definition,
    register,
    run_scenario,
    scenario_names,
)
from .result import ExperimentResult
from .runner import (
    AnalysisStep,
    FixedTrialStep,
    JobStep,
    ScenarioPlan,
    ScenarioRunner,
    TraceStep,
    apply_space_overrides,
    build_job_spec,
    metrics_by_system_collector,
    shared_tenancy_collector,
)
from .backends import (
    ChainExecutor,
    ContainedSerialBackend,
    ProcessPoolBackend,
    SerialBackend,
    backend_for,
    map_tasks,
)
from .cache import (
    CODE_VERSION,
    CacheStats,
    CachingBackend,
    NoSweepRuns,
    OutcomeCache,
    SweepRunStore,
    cached_backend,
    chain_key,
    compare_sweep_runs,
    record_sweep,
    resolve_cache_dir,
)
from .containment import ChainFailure, StepExecutionError, is_failure
from .merge import merge_outcomes
from .planner import ExecutionChain, chain_policy, partition
from .schema import collect_problems, strict_from_dict
from .views import (
    failure_view,
    jsonify,
    scenario_describe_payload,
    scenario_summary,
    sweep_summary,
)
from .spec import (
    ALGORITHM_BUILDERS,
    OBJECTIVES,
    PAPER_DISTRIBUTED_CLUSTER,
    PAPER_SINGLE_NODE,
    AlgorithmSpec,
    ClusterSpec,
    FailureSpec,
    Scenario,
    ScenarioBuilder,
    ScenarioError,
    SystemPolicySpec,
    TenancySpec,
    fixed_trial,
    pipetune,
    tune_v1,
    tune_v2,
)

# importing these modules populates SCENARIO_REGISTRY (paper exhibits
# first, then the novel scenarios); sweeps come next because the
# built-in sweeps reference registered scenarios, and the hostile-world
# pack comes last because it registers both scenarios and a sweep.
from . import paper  # noqa: E402  (registration side effects)
from . import novel  # noqa: E402  (registration side effects)
from .sweep import (  # noqa: E402  (built-in sweeps need the registry)
    SWEEP_REGISTRY,
    Sweep,
    SweepAxis,
    SweepError,
    SweepResult,
    SweepVariant,
    VariantOutcome,
    get_sweep,
    register_sweep,
    run_sweep,
    sweep_names,
)
from . import hostile  # noqa: E402  (registration side effects)

__all__ = [
    "ALGORITHM_BUILDERS",
    "AnalysisStep",
    "AlgorithmSpec",
    "CODE_VERSION",
    "CacheStats",
    "CachingBackend",
    "ChainExecutor",
    "ChainFailure",
    "ClusterSpec",
    "ContainedSerialBackend",
    "ExecutionChain",
    "ExperimentResult",
    "FailureSpec",
    "FixedTrialStep",
    "HYPERBAND_ETA",
    "HYPERBAND_MAX_EPOCHS",
    "JobStep",
    "NoSweepRuns",
    "OBJECTIVES",
    "OutcomeCache",
    "PAPER_DISTRIBUTED_CLUSTER",
    "PAPER_SINGLE_NODE",
    "ProcessPoolBackend",
    "SCENARIO_REGISTRY",
    "SWEEP_REGISTRY",
    "Scenario",
    "ScenarioBuilder",
    "ScenarioDefinition",
    "ScenarioError",
    "ScenarioPlan",
    "ScenarioRunner",
    "SerialBackend",
    "StepExecutionError",
    "Sweep",
    "SweepAxis",
    "SweepError",
    "SweepResult",
    "SweepRunStore",
    "SweepVariant",
    "SystemPolicySpec",
    "TRIAL_INIT_S",
    "TenancySpec",
    "TraceStep",
    "V2_SAMPLE_SCALE",
    "V2_TRIAL_SETUP_S",
    "VariantOutcome",
    "apply_space_overrides",
    "backend_for",
    "build_job_spec",
    "cached_backend",
    "chain_key",
    "chain_policy",
    "collect_problems",
    "compare_sweep_runs",
    "execute_job",
    "failure_view",
    "fixed_trial",
    "fresh_cluster",
    "get_definition",
    "get_sweep",
    "hostile",
    "is_failure",
    "jsonify",
    "make_pipetune_session",
    "make_pipetune_spec",
    "make_v1_spec",
    "make_v2_spec",
    "map_tasks",
    "mean",
    "merge_outcomes",
    "metrics_by_system_collector",
    "novel",
    "paper",
    "partition",
    "pipetune",
    "record_sweep",
    "register",
    "register_sweep",
    "resolve_cache_dir",
    "run_scenario",
    "run_sweep",
    "scenario_describe_payload",
    "scenario_names",
    "scenario_summary",
    "seeds_for",
    "session_for_cluster",
    "shared_tenancy_collector",
    "strict_from_dict",
    "sweep_names",
    "sweep_summary",
    "tune_v1",
    "tune_v2",
]
