"""The 12 paper exhibits, declared as scenarios.

Each of the paper's tables/figures (§7) is one registry entry: a
declarative :class:`~repro.scenarios.spec.Scenario` plus a collector
that folds the step outcomes into the exhibit's table. The historical
``repro.experiments.<exhibit>.run(scale, seed)`` entry points are thin
shims over these definitions, and the committed golden traces under
``benchmarks/results/`` regenerate byte-for-byte through this path
(CI's exhibits job proves it on every push).

Four exhibits (Figs 1, 2, 3, 8) are analytic/profiling measurements
rather than tuning-job comparisons; they register as ``analysis``
scenarios whose plan is a single measurement routine (defined here,
moved verbatim from the old exhibit modules).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.clustering import KMeans
from ..counters.events import EVENT_NAMES
from ..counters.profiler import EpochProfiler
from ..ec2.pricing import PAPER_INSTANCES, cost_table
from ..simulation.cluster import NodeSpec, SimCluster
from ..simulation.des import Environment
from ..simulation.power import EnergyMeter
from ..tune.trainer import run_trial
from ..workloads.perfmodel import active_cores, epoch_cost
from ..workloads.registry import CNN_NEWS20, LENET_MNIST, type12_workloads
from ..workloads.spec import (
    PAPER_BATCH_GRID,
    HyperParams,
    SystemParams,
    TrialConfig,
)
from .jobs import mean
from .registry import register
from .result import ExperimentResult
from .runner import (
    AnalysisStep,
    ScenarioPlan,
    TraceStep,
    _grouped_jobs,
    metrics_by_system_collector,
)
from .spec import Scenario, fixed_trial, pipetune, tune_v1, tune_v2

# ---------------------------------------------------------------------------
# Figure 1 — analytic cost model
# ---------------------------------------------------------------------------


def fig01_table(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig 1's rows (scale/seed unused: analytic exhibit)."""
    max_params = max(1, int(round(6 * min(1.0, scale)))) if scale < 1.0 else 6
    parameters = list(range(1, max_params + 1))
    result = ExperimentResult(
        exhibit="Figure 1",
        title="Grid-search tuning time and EC2 cost vs tuned parameters",
        columns=["parameters", "trials"]
        + [f"{inst.name}/hours" for inst in PAPER_INSTANCES]
        + [f"{inst.name}/usd" for inst in PAPER_INSTANCES],
        notes=(
            "3 values per parameter, LeNet/MNIST; exponential growth in "
            "both tuning hours and dollars is the claim under test"
        ),
    )
    for row in cost_table(LENET_MNIST, parameters=parameters):
        result.add_row(**row)
    return result


# ---------------------------------------------------------------------------
# Figure 2 — perf-event heatmap
# ---------------------------------------------------------------------------

#: Fig 2's colour-scale buckets (average events per epoch).
BUCKETS = (
    (1e8, "> 1e8"),
    (1e6, "1e8 - 1e6"),
    (1e4, "1e6 - 1e4"),
    (1e2, "1e4 - 1e2"),
    (0.0, "< 1e2"),
)


def bucket_label(events_per_epoch: float) -> str:
    for floor, label in BUCKETS:
        if events_per_epoch >= floor and floor > 0:
            return label
    return BUCKETS[-1][1]


def fig02_table(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Profile init + 5 epochs and tabulate per-event averages."""
    epochs = max(2, int(round(5 * min(1.0, scale)))) if scale < 1.0 else 5
    config = TrialConfig(
        CNN_NEWS20,
        HyperParams(batch_size=64, epochs=epochs),
        SystemParams(cores=16, memory_gb=32.0),
    )
    profiler = EpochProfiler()
    phases = ["init"] + [str(e) for e in range(1, epochs + 1)]
    matrix = np.zeros((len(EVENT_NAMES), len(phases)))
    for column, phase in enumerate(phases):
        epoch_index = 0 if phase == "init" else int(phase)
        cost = epoch_cost(config, epoch=epoch_index)
        duration = cost.total_s * (0.5 if phase == "init" else 1.0)
        busy = active_cores(config, cost) * (0.6 if phase == "init" else 1.0)
        profile = profiler.profile_epoch(config, epoch_index, duration, busy)
        matrix[:, column] = profile.events_per_epoch()

    result = ExperimentResult(
        exhibit="Figure 2",
        title="Performance-counter events averaged per epoch (CNN/News20)",
        columns=["event"] + [f"log10@{p}" for p in phases] + ["bucket", "cv"],
        notes=(
            "cv = coefficient of variation across training epochs; the "
            "paper's claim is that it stays small (repetitive behaviour)"
        ),
    )
    for i, event in enumerate(EVENT_NAMES):
        training_cols = matrix[i, 1:]
        cv = float(np.std(training_cols) / max(1e-12, np.mean(training_cols)))
        row = {
            "event": event,
            "bucket": bucket_label(float(np.mean(training_cols))),
            "cv": cv,
        }
        for column, phase in enumerate(phases):
            row[f"log10@{phase}"] = float(np.log10(1.0 + matrix[i, column]))
        result.add_row(**row)
    return result


# ---------------------------------------------------------------------------
# Figure 3 — parameter-impact trials
# ---------------------------------------------------------------------------

FIG03_EPOCHS = 10


def _fig03_train(
    batch_size: int, cores: int, memory_gb: float = 32.0
) -> Tuple[float, float, float]:
    """(accuracy, duration_s, energy_j) of one full training run.

    Energy is the node-level (PDU-view) trapezoidal integral over the
    run, matching how the paper measures Fig 3c — idle draw included.
    """
    env = Environment()
    cluster = SimCluster(env, [NodeSpec(name="n0", cores=16, memory_gb=64.0)])
    meter = EnergyMeter(env, cluster)
    process = env.process(
        run_trial(
            env,
            cluster,
            trial_id=f"fig3-b{batch_size}-c{cores}",
            workload=LENET_MNIST,
            hyper=HyperParams(batch_size=batch_size, epochs=FIG03_EPOCHS),
            system=SystemParams(cores=cores, memory_gb=memory_gb),
        )
    )
    env.run()
    result = process.value
    return result.accuracy, result.training_time_s, meter.total_energy_joules()


def _pct(value: float, baseline: float) -> float:
    return 100.0 * (value - baseline) / baseline


def fig03_table(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate all three panels as one long table."""
    result = ExperimentResult(
        exhibit="Figure 3",
        title="Batch-size and core-count impact (LeNet/MNIST)",
        columns=[
            "panel",
            "batch_size",
            "cores",
            "accuracy_diff_pct",
            "duration_diff_pct",
            "energy_diff_pct",
        ],
        notes=(
            "(a) baseline batch 32 @4 cores; (b)/(c) baseline 1 core per "
            "batch size. Expected shapes: larger batches -> lower accuracy, "
            "shorter runtime, lower energy; extra cores help batch 1024 "
            "but hurt batch 64"
        ),
    )

    # Panel (a): batch-size impact at the default 4 cores.
    base_acc, base_dur, base_energy = _fig03_train(batch_size=32, cores=4)
    for batch in (64, 256, 1024):
        acc, dur, energy = _fig03_train(batch_size=batch, cores=4)
        result.add_row(
            panel="a",
            batch_size=batch,
            cores=4,
            accuracy_diff_pct=_pct(acc, base_acc),
            duration_diff_pct=_pct(dur, base_dur),
            energy_diff_pct=_pct(energy, base_energy),
        )

    # Panels (b) and (c): cores impact per batch size vs sequential.
    for batch in (64, 256, 1024):
        _, dur1, energy1 = _fig03_train(batch_size=batch, cores=1)
        for cores in (2, 4, 8):
            _, dur, energy = _fig03_train(batch_size=batch, cores=cores)
            result.add_row(
                panel="b/c",
                batch_size=batch,
                cores=cores,
                accuracy_diff_pct=0.0,
                duration_diff_pct=_pct(dur, dur1),
                energy_diff_pct=_pct(energy, energy1),
            )
    return result


# ---------------------------------------------------------------------------
# Figure 8 — profiling campaign + k-means
# ---------------------------------------------------------------------------


def profile_campaign(scale: float = 1.0):
    """Feature vectors + metadata from the §7.2 profiling campaign.

    Each workload is profiled under the paper's batch grid (one epoch
    per point, default system configuration, two repetitions).
    """
    batches = PAPER_BATCH_GRID if scale >= 1.0 else PAPER_BATCH_GRID[:2]
    profiler = EpochProfiler()
    system = SystemParams(cores=8, memory_gb=32.0)
    features, meta = [], []
    for workload in type12_workloads():
        for batch in batches:
            config = TrialConfig(workload, HyperParams(batch_size=batch), system)
            profiles = []
            durations = []
            for rep in range(2):
                cost = epoch_cost(config, epoch=rep)
                durations.append(cost.total_s)
                profiles.append(
                    profiler.profile_epoch(
                        config, rep, cost.total_s, active_cores(config, cost)
                    )
                )
            features.append(np.mean([p.feature_vector() for p in profiles], axis=0))
            meta.append(
                {
                    "workload": workload.name,
                    "model": workload.model,
                    "dataset": workload.dataset,
                    "type": workload.workload_type,
                    "batch_size": batch,
                    "duration_s": float(np.mean(durations)),
                }
            )
    return np.array(features), meta


def fig08_table(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    features, meta = profile_campaign(scale)
    model = KMeans(k=2, seed=seed).fit(features)
    result = ExperimentResult(
        exhibit="Figure 8",
        title="k-means (k=2) clusters over profiling-campaign features",
        columns=[
            "workload",
            "model",
            "dataset",
            "type",
            "batch_size",
            "duration_s",
            "cluster",
        ],
        notes=(
            "expected: Type-I (lenet/*) and Type-II (*/news20) separate "
            "into the two clusters"
        ),
    )
    for row, label in zip(meta, model.labels):
        result.add_row(cluster=int(label), **row)
    return result


# ---------------------------------------------------------------------------
# Collectors for the tuning-job exhibits
# ---------------------------------------------------------------------------


def _collect_fig05(plan: ScenarioPlan, outcomes: List) -> ExperimentResult:
    groups = _grouped_jobs(plan, outcomes)
    baseline = next(runs for _, p, runs in groups if p.kind == "v1")
    base_error = mean(1.0 - r.best_accuracy for r in baseline)
    base_time = mean(r.best_training_time_s for r in baseline)
    result = ExperimentResult(
        exhibit="Figure 5",
        title="Tune V2 under co-located jobs vs a single Tune V1 job",
        columns=["cores", "jobs", "error_improvement_pct", "runtime_improvement_pct"],
        notes=(
            "improvement relative to one Tune V1 job on the default "
            "system configuration; positive = better than baseline"
        ),
    )
    for _, policy, runs in groups:
        if policy.kind != "v2":
            continue
        error = mean(1.0 - r.best_accuracy for r in runs)
        time = mean(r.best_training_time_s for r in runs)
        result.add_row(
            cores=dict(policy.space_overrides)["cores"][0],
            jobs=int(policy.contention),
            error_improvement_pct=100.0 * (base_error - error) / base_error,
            runtime_improvement_pct=100.0 * (base_time - time) / base_time,
        )
    return result


def _collect_table2(plan: ScenarioPlan, outcomes: List) -> ExperimentResult:
    result = ExperimentResult(
        exhibit="Table 2",
        title="Accuracy, training and tuning time per approach (LeNet/MNIST)",
        columns=["approach", "accuracy_pct", "training_time_s", "tuning_time_s"],
        notes=f"mean over {len(plan.seeds)} seeds",
    )
    for _, policy, runs in _grouped_jobs(plan, outcomes):
        if policy.kind == "fixed":
            result.add_row(
                approach=policy.label,
                accuracy_pct=100.0 * mean(r.accuracy for r in runs),
                training_time_s=mean(r.training_time_s for r in runs),
                tuning_time_s=0.0,
            )
        else:
            result.add_row(
                approach=policy.label,
                accuracy_pct=100.0 * mean(r.best_accuracy for r in runs),
                training_time_s=mean(r.best_training_time_s for r in runs),
                tuning_time_s=mean(r.tuning_time_s for r in runs),
            )
    return result


def _collect_fig09(plan: ScenarioPlan, outcomes: List) -> ExperimentResult:
    result = ExperimentResult(
        exhibit="Figure 9",
        title="Accuracy convergence over tuning wall-clock (CNN/News20)",
        columns=["system", "wall_time_s", "best_accuracy_pct", "trial_accuracy_pct"],
        notes="one timeline row per completed trial",
    )
    for _, policy, runs in _grouped_jobs(plan, outcomes):
        for hpt in runs:
            for point in hpt.timeline:
                result.add_row(
                    system=policy.label,
                    wall_time_s=point.wall_time_s,
                    best_accuracy_pct=100.0 * point.best_accuracy,
                    trial_accuracy_pct=100.0 * point.trial_accuracy,
                )
    return result


def _collect_fig10(plan: ScenarioPlan, outcomes: List) -> ExperimentResult:
    result = ExperimentResult(
        exhibit="Figure 10",
        title="Training-trial time over tuning wall-clock (CNN/News20)",
        columns=["system", "wall_time_s", "trial_time_s"],
        notes="one row per completed trial; "
        "trial_time normalised to a full training run",
    )
    for _, policy, runs in _grouped_jobs(plan, outcomes):
        for hpt in runs:
            for point in hpt.timeline:
                result.add_row(
                    system=policy.label,
                    wall_time_s=point.wall_time_s,
                    trial_time_s=point.trial_training_time_s,
                )
    return result


def _collect_fig13(plan: ScenarioPlan, outcomes: List) -> ExperimentResult:
    tenancy = plan.scenario.tenancy
    num_jobs = tenancy.scaled_jobs(plan.scale)
    result = ExperimentResult(
        exhibit="Figure 13",
        title="Multi-tenancy mean response time (Type-I/II mix)",
        columns=["system", "type_I_s", "type_II_s", "all_s", "queue_wait_s"],
        notes=(
            f"{num_jobs} jobs, exp. interarrival "
            f"{tenancy.mean_interarrival_s:.0f}s, "
            f"{tenancy.max_concurrent_jobs} concurrent jobs, 20% unseen"
        ),
    )
    for step, trace in zip(plan.steps, outcomes):
        if not isinstance(step, TraceStep):
            continue
        result.add_row(
            system=step.policy.label,
            type_I_s=trace.mean_response_time_s("I"),
            type_II_s=trace.mean_response_time_s("II"),
            all_s=trace.mean_response_time_s(),
            queue_wait_s=trace.mean_queue_wait_s(),
        )
    return result


def _collect_fig14(plan: ScenarioPlan, outcomes: List) -> ExperimentResult:
    tenancy = plan.scenario.tenancy
    num_jobs = tenancy.scaled_jobs(plan.scale)
    result = ExperimentResult(
        exhibit="Figure 14",
        title="Multi-tenancy mean response time (Type-III, single node)",
        columns=["system", "jacobi_s", "spkmeans_s", "bfs_s", "all_s"],
        notes=(
            f"{num_jobs} jobs, exp. interarrival "
            f"{tenancy.mean_interarrival_s:.0f}s, "
            "FIFO one job at a time, 20% unseen"
        ),
    )
    def by_workload(trace, prefix: str) -> float:
        records = [
            r
            for r in trace.records
            if r.arrival.workload.name.startswith(prefix)
        ]
        if not records:
            return 0.0
        return sum(r.response_time_s for r in records) / len(records)

    for step, trace in zip(plan.steps, outcomes):
        if not isinstance(step, TraceStep):
            continue
        result.add_row(
            system=step.policy.label,
            jacobi_s=by_workload(trace, "jacobi"),
            spkmeans_s=by_workload(trace, "spkmeans"),
            bfs_s=by_workload(trace, "bfs"),
            all_s=trace.mean_response_time_s(),
        )
    return result


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


def _analysis_plan(name: str, fn):
    def plan_fn(scenario, scale, seed):
        return [AnalysisStep(name=name, fn=fn)]

    return plan_fn


def _analysis_collect(plan: ScenarioPlan, outcomes: List) -> ExperimentResult:
    return outcomes[0]


def _register_analysis(name: str, fn, exhibit: str, title: str, description: str,
                       **builder_kwargs) -> None:
    builder = (
        Scenario.builder(name)
        .kind("analysis")
        .exhibit(exhibit)
        .title(title)
        .describe(description)
    )
    for method, value in builder_kwargs.items():
        getattr(builder, method)(*value if isinstance(value, tuple) else (value,))
    register(
        builder.build(validate=False),
        collect=_analysis_collect,
        plan_fn=_analysis_plan(name, fn),
        source="paper",
    )


_register_analysis(
    "fig01",
    fig01_table,
    "Figure 1",
    "Grid-search tuning time and EC2 cost vs tuned parameters",
    "Analytic cost model: exponential growth of grid search on EC2.",
    workloads=("lenet-mnist",),
)

_register_analysis(
    "fig02",
    fig02_table,
    "Figure 2",
    "Performance-counter events averaged per epoch (CNN/News20)",
    "PMU heatmap over init + 5 training epochs: events repeat per epoch.",
    workloads=("cnn-news20",),
)

_register_analysis(
    "fig03",
    fig03_table,
    "Figure 3",
    "Batch-size and core-count impact (LeNet/MNIST)",
    "Hyper/system parameter impact on accuracy, runtime and energy.",
    workloads=("lenet-mnist",),
)

register(
    Scenario.builder("fig05")
    .exhibit("Figure 5")
    .title("Tune V2 under co-located jobs vs a single Tune V1 job")
    .describe(
        "A Tune V2 job pinned to {1,2,4,8} cores shared with {1,2,3} "
        "background jobs, vs one Tune V1 job on the default setup."
    )
    .paper_cluster(distributed=True)
    .workloads("lenet-mnist")
    .algorithm("hyperband", max_epochs=9, eta=3)
    .compare(
        tune_v1(),
        *(
            tune_v2(
                label=f"tune-v2-{cores}c-{jobs}j",
                name=f"v2-pinned-{cores}c-{jobs}j",
                sample_scale=1.0,
                contention=float(jobs),
                space_overrides=(("cores", (cores,)),),
            )
            for cores in (1, 2, 4, 8)
            for jobs in (2, 3, 4)
        ),
    )
    .repetitions(2)
    .build(),
    collect=_collect_fig05,
    source="paper",
)

register(
    Scenario.builder("table2")
    .exhibit("Table 2")
    .title("Accuracy, training and tuning time per approach (LeNet/MNIST)")
    .describe(
        "Arbitrary configuration vs Tune V1 vs Tune V2 vs PipeTune on "
        "LeNet/MNIST (paper Table 2)."
    )
    .paper_cluster(distributed=True)
    .workloads("lenet-mnist")
    .algorithm("hyperband", max_epochs=9, eta=3)
    .compare(
        fixed_trial(
            # a plausible "just pick something" configuration: small-ish
            # batch (slow epochs), overly hot learning rate, heavy
            # dropout, more epochs than needed.
            hyper={
                "batch_size": 64,
                "dropout": 0.45,
                "learning_rate": 0.03,
                "epochs": 18,
            },
            system={"cores": 8, "memory_gb": 32.0},
            label="Arbitrary",
            name="arbitrary",
        ),
        tune_v1(label="Tune V1"),
        tune_v2(label="Tune V2"),
        pipetune(label="PipeTune"),
    )
    .repetitions(3)
    .build(),
    collect=_collect_table2,
    source="paper",
)

_register_analysis(
    "fig08",
    fig08_table,
    "Figure 8",
    "k-means (k=2) clusters over profiling-campaign features",
    "k-means over the profiling campaign separates Type-I from Type-II.",
    workloads=tuple(w.name for w in type12_workloads()),
)

register(
    Scenario.builder("fig09")
    .exhibit("Figure 9")
    .title("Accuracy convergence over tuning wall-clock (CNN/News20)")
    .describe(
        "Best-so-far accuracy over the tuning wall-clock for PipeTune, "
        "Tune V1 and Tune V2 on CNN/News20."
    )
    .paper_cluster(distributed=True)
    .workloads("cnn-news20")
    .algorithm("hyperband", max_epochs=9, eta=3)
    .compare(pipetune(), tune_v1(), tune_v2())
    .repetitions(1)
    .build(),
    collect=_collect_fig09,
    source="paper",
)

register(
    Scenario.builder("fig10")
    .exhibit("Figure 10")
    .title("Training-trial time over tuning wall-clock (CNN/News20)")
    .describe(
        "Per-trial (normalised) training time over the tuning "
        "wall-clock; companion to Figure 9."
    )
    .paper_cluster(distributed=True)
    .workloads("cnn-news20")
    .algorithm("hyperband", max_epochs=9, eta=3)
    .compare(pipetune(), tune_v1(), tune_v2())
    .repetitions(1)
    .build(),
    collect=_collect_fig10,
    source="paper",
)

register(
    Scenario.builder("fig11")
    .exhibit("Figure 11")
    .title("Single-tenancy: accuracy / training / tuning / energy (Type-I/II)")
    .describe(
        "Four metrics for every Type-I/II workload under Tune V1, "
        "Tune V2 and PipeTune, each job on a dedicated 4-node cluster."
    )
    .paper_cluster(distributed=True)
    .workloads_of_type("I", "II")
    .algorithm("hyperband", max_epochs=9, eta=3)
    .compare(tune_v1(), tune_v2(), pipetune())
    .repetitions(3)
    .build(),
    collect=metrics_by_system_collector(
        "Figure 11",
        "Single-tenancy: accuracy / training / tuning / energy (Type-I/II)",
        lambda plan: (
            f"mean over {len(plan.seeds)} seeds; dedicated 4-node cluster per job"
        ),
    ),
    source="paper",
)

register(
    Scenario.builder("fig12")
    .exhibit("Figure 12")
    .title("Single-node Type-III: accuracy / training / tuning / energy")
    .describe(
        "The Figure-11 comparison on the single-node testbed with the "
        "short-epoch Rodinia workloads."
    )
    .paper_cluster(distributed=False)
    .workloads_of_type("III")
    .algorithm("hyperband", max_epochs=9, eta=3)
    .compare(tune_v1(), tune_v2(), pipetune())
    .repetitions(3)
    .max_concurrent_trials(2)
    .build(),
    collect=metrics_by_system_collector(
        "Figure 12",
        "Single-node Type-III: accuracy / training / tuning / energy",
        lambda plan: f"mean over {len(plan.seeds)} seeds; single 8-core/24GB node",
    ),
    source="paper",
)

register(
    Scenario.builder("fig13")
    .exhibit("Figure 13")
    .title("Multi-tenancy mean response time (Type-I/II mix)")
    .describe(
        "HPT jobs arriving with exponential interarrival times on the "
        "shared 4-node cluster; 20% unseen workload variants."
    )
    .paper_cluster(distributed=True)
    .workloads_of_type("I", "II")
    .algorithm("hyperband", max_epochs=9, eta=3)
    .compare(tune_v1(), tune_v2(), pipetune())
    .multi_tenant(
        num_jobs=12,
        mean_interarrival_s=1200.0,
        unseen_fraction=0.2,
        max_concurrent_jobs=2,
        min_jobs=4,
    )
    .build(),
    collect=_collect_fig13,
    source="paper",
)

register(
    Scenario.builder("fig14")
    .exhibit("Figure 14")
    .title("Multi-tenancy mean response time (Type-III, single node)")
    .describe(
        "The Figure-13 protocol on the single-node testbed with the "
        "Rodinia workloads, FIFO one job at a time."
    )
    .paper_cluster(distributed=False)
    .workloads_of_type("III")
    .algorithm("hyperband", max_epochs=9, eta=3)
    .compare(tune_v1(), tune_v2(), pipetune())
    .multi_tenant(
        num_jobs=12,
        mean_interarrival_s=400.0,
        unseen_fraction=0.2,
        max_concurrent_jobs=1,
        min_jobs=4,
    )
    .max_concurrent_trials(2)
    .build(),
    collect=_collect_fig14,
    source="paper",
)
