"""Plugin-style scenario registry: the one catalogue of experiments.

Every runnable experiment — the 12 paper exhibits and any number of
novel scenarios — registers here as a :class:`ScenarioDefinition`:
a declarative :class:`~repro.scenarios.spec.Scenario` plus (optionally)
a custom collector and plan function. The CLI (``repro scenario
list|describe|run``), the exhibit shims in ``repro.experiments`` and
the golden-trace harness all resolve scenarios through this registry.

Downstream code extends the catalogue the same way the built-ins do::

    from repro.scenarios import Scenario, register, tune_v1, pipetune

    register(
        Scenario.builder("my-sweep")
        .workloads("lenet-mnist")
        .compare(tune_v1(), pipetune())
        .repetitions(2)
        .build()
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .result import ExperimentResult
from .runner import Collector, PlanFn, ScenarioRunner
from .spec import Scenario

SCENARIO_SOURCES = ("paper", "novel", "user")


@dataclass(frozen=True)
class ScenarioDefinition:
    """One registry entry: the scenario plus its run-time couplings."""

    scenario: Scenario
    collect: Optional[Collector] = None
    plan_fn: Optional[PlanFn] = None
    source: str = "user"

    @property
    def name(self) -> str:
        return self.scenario.name

    def runner(self) -> ScenarioRunner:
        return ScenarioRunner(self)


#: name -> definition, in registration order (paper exhibits first).
SCENARIO_REGISTRY: Dict[str, ScenarioDefinition] = {}


def register(
    scenario: Scenario,
    collect: Optional[Collector] = None,
    plan_fn: Optional[PlanFn] = None,
    source: str = "user",
    replace: bool = False,
) -> ScenarioDefinition:
    """Validate and add one scenario to the registry."""
    if source not in SCENARIO_SOURCES:
        raise ValueError(f"unknown scenario source {source!r}")
    if scenario.name in SCENARIO_REGISTRY and not replace:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    if scenario.kind != "analysis":
        scenario.validate()
    definition = ScenarioDefinition(
        scenario=scenario, collect=collect, plan_fn=plan_fn, source=source
    )
    SCENARIO_REGISTRY[scenario.name] = definition
    return definition


def get_definition(name: str) -> ScenarioDefinition:
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        known = ", ".join(SCENARIO_REGISTRY)
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def scenario_names(source: Optional[str] = None) -> List[str]:
    return [
        name
        for name, definition in SCENARIO_REGISTRY.items()
        if source is None or definition.source == source
    ]


def run_scenario(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    workers: Optional[int] = None,
    backend=None,
) -> ExperimentResult:
    """Resolve a scenario by name and run all four phases.

    ``workers > 1`` executes the plan's chains on a process pool
    (bit-identical to serial execution; see
    :mod:`repro.scenarios.backends`). ``backend`` overrides the
    backend outright — e.g. a :class:`~repro.scenarios.cache.
    CachingBackend` for content-addressed reuse; the rendered result
    is byte-identical either way."""
    return get_definition(name).runner().run(
        scale=scale, seed=seed, workers=workers, backend=backend
    )
