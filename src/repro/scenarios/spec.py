"""Declarative scenario model: *what* to run, never *how*.

A :class:`Scenario` is a frozen, validated, JSON-serialisable
description of one experiment: workload(s) x cluster topology x HPO
algorithm x system policies x objective x tenancy/arrival pattern x
failure injection x repetitions. The middleware derives the *how* —
spec construction, session sharing, execution order — inside
:class:`~repro.scenarios.runner.ScenarioRunner`, mirroring the
semantic-driven configuration style of the middleware literature
(declare the intent, derive the mechanics).

Composition points:

* :class:`ClusterSpec` — node count/shape (paper presets included);
* :class:`AlgorithmSpec` — any registered search algorithm + kwargs;
* :class:`SystemPolicySpec` — one compared system per entry
  (``v1`` / ``v2`` / ``pipetune`` / ``fixed``), with per-policy
  overrides (search-space pinning, contention, sample scale, labels);
* :class:`TenancySpec` — dedicated cluster per job, or a shared
  cluster with a Poisson arrival process;
* :class:`FailureSpec` — failure injection: OOM, spot preemption with
  checkpoint/restore, node churn, transient crashes (with a per-job
  retry policy) and straggler slowdown, all default-off;
* :class:`ScenarioBuilder` — fluent construction
  (``Scenario.builder("name").workloads(...).compare(...).build()``).

Every piece round-trips through ``as_dict``/``from_dict`` and
``to_json``/``from_json`` so scenarios can be stored, diffed and
shipped as data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..hpo.algorithms import GridSearch, RandomSearch
from ..hpo.asha import Asha
from ..hpo.bayesian import BayesianOptimisation
from ..hpo.genetic import GeneticSearch
from ..hpo.hyperband import HyperBand
from ..hpo.pbt import PopulationBasedTraining
from ..hpo.space import SearchSpace, joint_space, paper_hyper_space
from ..simulation.cluster import NodeSpec, SimCluster
from ..simulation.des import Environment
from ..tune.faults import (
    ChurnSpec,
    CrashSpec,
    FaultModel,
    PreemptionSpec,
    RetryPolicy,
    StragglerSpec,
)
from ..tune.objectives import accuracy_objective, accuracy_per_time_objective
from ..workloads.registry import ALL_WORKLOADS, get_workload, workloads_of_type
from ..workloads.spec import HyperParams, SystemParams
from .jobs import TRIAL_INIT_S, V2_SAMPLE_SCALE, V2_TRIAL_SETUP_S
from .schema import strict_from_dict, unknown_field_message

#: search algorithms a scenario can name; each builder takes
#: ``(space, seed=..., **params)``.
ALGORITHM_BUILDERS = {
    "hyperband": HyperBand,
    "asha": Asha,
    "random": RandomSearch,
    "grid": GridSearch,
    "bayesian": BayesianOptimisation,
    "genetic": GeneticSearch,
    "pbt": PopulationBasedTraining,
}

#: trial objectives a scenario/policy can name.
OBJECTIVES = {
    "accuracy": accuracy_objective,
    "accuracy_per_time": accuracy_per_time_objective,
}

POLICY_KINDS = ("v1", "v2", "pipetune", "fixed")
WARM_STARTS = ("type12", "type3", "scenario", "none")
SCENARIO_KINDS = ("tuning", "analysis")
TENANCY_MODES = ("dedicated", "shared")

_KNOWN_WORKLOADS = tuple(w.name for w in ALL_WORKLOADS)


class ScenarioError(ValueError):
    """A scenario failed validation; ``problems`` lists every issue."""

    def __init__(self, name: str, problems: Sequence[str]):
        self.scenario = name
        self.problems = list(problems)
        detail = "; ".join(self.problems)
        super().__init__(f"invalid scenario {name!r}: {detail}")

    def __reduce__(self):
        # Default pickling would rebuild via cls(*self.args) — one
        # formatted string against a two-argument __init__.
        return type(self), (self.scenario, self.problems)


def _pairs(mapping) -> Tuple[Tuple[str, object], ...]:
    """Canonical (sorted) tuple-of-pairs form of a mapping field."""
    if mapping is None:
        return ()
    if isinstance(mapping, Mapping):
        items = mapping.items()
    else:
        items = tuple(tuple(p) for p in mapping)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class ClusterSpec:
    """Homogeneous cluster topology (the paper testbeds and beyond)."""

    nodes: int = 4
    cores_per_node: int = 16
    memory_gb_per_node: float = 64.0
    idle_watts: float = 60.0
    core_watts: float = 11.5

    def __post_init__(self):
        issues = self.problems()
        if issues:
            raise ValueError("; ".join(issues))

    def problems(self) -> List[str]:
        issues: List[str] = []
        if self.nodes < 1:
            issues.append("cluster needs at least one node")
        if self.cores_per_node < 1:
            issues.append("cores_per_node must be >= 1")
        if self.memory_gb_per_node <= 0:
            issues.append("memory_gb_per_node must be positive")
        if self.idle_watts < 0 or self.core_watts < 0:
            issues.append("idle_watts/core_watts must be >= 0")
        return issues

    @property
    def distributed(self) -> bool:
        return self.nodes > 1

    def build(self, env: Environment) -> SimCluster:
        """Instantiate the cluster (node names match the paper's)."""
        return SimCluster(
            env,
            [
                NodeSpec(
                    name=f"node{i}",
                    cores=self.cores_per_node,
                    memory_gb=self.memory_gb_per_node,
                    idle_watts=self.idle_watts,
                    core_watts=self.core_watts,
                )
                for i in range(self.nodes)
            ],
        )

    def as_dict(self) -> Dict:
        return {
            "nodes": self.nodes,
            "cores_per_node": self.cores_per_node,
            "memory_gb_per_node": self.memory_gb_per_node,
            "idle_watts": self.idle_watts,
            "core_watts": self.core_watts,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ClusterSpec":
        return strict_from_dict(cls, data, "cluster")


#: the 4-node testbed used for Type-I / Type-II experiments (§7.1.1).
PAPER_DISTRIBUTED_CLUSTER = ClusterSpec()
#: the single E5-2620 node used for Type-III experiments (§7.1.1).
PAPER_SINGLE_NODE = ClusterSpec(
    nodes=1, cores_per_node=8, memory_gb_per_node=24.0, idle_watts=55.0, core_watts=10.0
)


@dataclass(frozen=True)
class AlgorithmSpec:
    """A search algorithm by registry name plus its keyword arguments."""

    name: str = "hyperband"
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "params", _pairs(self.params))

    def problems(self) -> List[str]:
        if self.name not in ALGORITHM_BUILDERS:
            return [
                f"unknown algorithm {self.name!r}; known: "
                f"{sorted(ALGORITHM_BUILDERS)}"
            ]
        return []

    def build(self, space: SearchSpace, seed: int, sample_scale: float = 1.0):
        kwargs = dict(self.params)
        if self.name == "hyperband":
            kwargs.setdefault("sample_scale", sample_scale)
        return ALGORITHM_BUILDERS[self.name](space, seed=seed, **kwargs)

    def as_dict(self) -> Dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "AlgorithmSpec":
        return strict_from_dict(cls, data, "algorithm", convert={"params": _pairs})


@dataclass(frozen=True)
class SystemPolicySpec:
    """One compared system: a policy plus its per-policy overrides.

    ``None`` fields mean "derive the paper default for this kind":
    trial setup cost (V2 pays an executor restart), HyperBand sample
    scale (V2 explores a proportionally larger space), the trial
    objective (V2 scores accuracy per time) and the ground-truth warm
    start (the paper's offline campaign workloads).
    """

    kind: str = "pipetune"
    label: str = ""
    name: str = ""  # HptJobSpec name override (defaults to kind-workload)
    trial_setup_s: Optional[float] = None
    sample_scale: Optional[float] = None
    warm_start: Optional[str] = None
    objective: Optional[str] = None
    contention: float = 1.0
    #: per-policy search-space pinning: ((param, (choices...)), ...)
    space_overrides: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    #: fixed-kind only: the hyper/system parameters of the single trial.
    hyper: Tuple[Tuple[str, object], ...] = ()
    system: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "space_overrides",
            tuple((str(k), tuple(v)) for k, v in self.space_overrides),
        )
        object.__setattr__(self, "hyper", _pairs(self.hyper))
        object.__setattr__(self, "system", _pairs(self.system))
        if not self.label:
            object.__setattr__(self, "label", _DEFAULT_LABELS.get(self.kind, self.kind))

    # -- derived defaults --------------------------------------------------
    @property
    def effective_trial_setup_s(self) -> float:
        if self.trial_setup_s is not None:
            return self.trial_setup_s
        return V2_TRIAL_SETUP_S if self.kind == "v2" else TRIAL_INIT_S

    @property
    def effective_sample_scale(self) -> float:
        if self.sample_scale is not None:
            return self.sample_scale
        return V2_SAMPLE_SCALE if self.kind == "v2" else 1.0

    @property
    def effective_objective(self) -> str:
        if self.objective is not None:
            return self.objective
        return "accuracy_per_time" if self.kind == "v2" else "accuracy"

    def effective_warm_start(self, cluster: ClusterSpec) -> str:
        if self.warm_start is not None:
            return self.warm_start
        return "type12" if cluster.distributed else "scenario"

    def problems(self, where: str = "") -> List[str]:
        """Context-free validation; the scenario adds cluster-aware checks."""
        prefix = where or f"policy {self.label!r}"
        issues: List[str] = []
        if self.kind not in POLICY_KINDS:
            issues.append(f"{prefix}: unknown kind {self.kind!r}")
            return issues
        if self.warm_start is not None and self.warm_start not in WARM_STARTS:
            issues.append(f"{prefix}: unknown warm_start {self.warm_start!r}")
        if self.objective is not None and self.objective not in OBJECTIVES:
            issues.append(
                f"{prefix}: unknown objective {self.objective!r}; "
                f"known: {sorted(OBJECTIVES)}"
            )
        if self.kind == "pipetune" and self.objective not in (None, "accuracy"):
            issues.append(
                f"{prefix}: pipetune keeps the accuracy objective (V1 level)"
            )
        if self.contention < 1.0:
            issues.append(f"{prefix}: contention must be >= 1")
        return issues

    def hyper_params(self) -> HyperParams:
        return HyperParams(**dict(self.hyper))

    def system_params(self) -> SystemParams:
        return SystemParams(**dict(self.system))

    def as_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "label": self.label,
            "name": self.name,
            "trial_setup_s": self.trial_setup_s,
            "sample_scale": self.sample_scale,
            "warm_start": self.warm_start,
            "objective": self.objective,
            "contention": self.contention,
            "space_overrides": {k: list(v) for k, v in self.space_overrides},
            "hyper": dict(self.hyper),
            "system": dict(self.system),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SystemPolicySpec":
        return strict_from_dict(
            cls,
            data,
            "system policy",
            convert={
                "space_overrides": lambda value: tuple(
                    (k, tuple(v)) for k, v in dict(value).items()
                ),
                "hyper": _pairs,
                "system": _pairs,
            },
        )


_DEFAULT_LABELS = {
    "v1": "tune-v1",
    "v2": "tune-v2",
    "pipetune": "pipetune",
    "fixed": "fixed",
}


def tune_v1(**overrides) -> SystemPolicySpec:
    """The Tune V1 baseline policy (accuracy only, fixed system)."""
    return SystemPolicySpec(kind="v1", **overrides)


def tune_v2(**overrides) -> SystemPolicySpec:
    """The Tune V2 baseline policy (system params in the space)."""
    return SystemPolicySpec(kind="v2", **overrides)


def pipetune(**overrides) -> SystemPolicySpec:
    """The PipeTune policy (pipelined system tuning via hooks)."""
    return SystemPolicySpec(kind="pipetune", **overrides)


def fixed_trial(
    hyper: Mapping, system: Mapping, label: str = "fixed", **overrides
) -> SystemPolicySpec:
    """A no-tuning policy: one plain training trial per seed."""
    return SystemPolicySpec(
        kind="fixed",
        label=label,
        hyper=_pairs(hyper),
        system=_pairs(system),
        **overrides,
    )


@dataclass(frozen=True)
class TenancySpec:
    """Dedicated cluster per job, or shared cluster with arrivals."""

    mode: str = "dedicated"
    num_jobs: int = 12
    mean_interarrival_s: float = 1200.0
    unseen_fraction: float = 0.2
    max_concurrent_jobs: int = 2
    min_jobs: int = 4

    @property
    def shared(self) -> bool:
        return self.mode == "shared"

    def scaled_jobs(self, scale: float) -> int:
        return max(self.min_jobs, int(round(self.num_jobs * scale)))

    def problems(self) -> List[str]:
        issues: List[str] = []
        if self.mode not in TENANCY_MODES:
            issues.append(f"unknown tenancy mode {self.mode!r}")
            return issues
        if self.shared:
            if self.num_jobs < 1 or self.min_jobs < 1:
                issues.append("shared tenancy needs num_jobs/min_jobs >= 1")
            if self.mean_interarrival_s <= 0:
                issues.append("mean_interarrival_s must be positive")
            if not 0.0 <= self.unseen_fraction <= 1.0:
                issues.append("unseen_fraction must be in [0, 1]")
            if self.max_concurrent_jobs < 1:
                issues.append("max_concurrent_jobs must be >= 1")
        return issues

    def as_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "num_jobs": self.num_jobs,
            "mean_interarrival_s": self.mean_interarrival_s,
            "unseen_fraction": self.unseen_fraction,
            "max_concurrent_jobs": self.max_concurrent_jobs,
            "min_jobs": self.min_jobs,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TenancySpec":
        return strict_from_dict(cls, data, "tenancy")


#: the nested fault specs a FailureSpec composes, by field name.
_FAULT_SPEC_TYPES = {
    "preemption": PreemptionSpec,
    "churn": ChurnSpec,
    "crash": CrashSpec,
    "straggler": StragglerSpec,
    "retry": RetryPolicy,
}


@dataclass(frozen=True)
class FailureSpec:
    """Composable failure-injection model; every axis defaults off.

    ``oom_threshold`` kills memory-starved trials (the original knob);
    the hostile-world axes declare spot preemption with
    checkpoint/restore, node churn, transient crashes recovered by the
    per-job :class:`~repro.tune.faults.RetryPolicy`, and straggler
    slowdown. Declaration only — injection and recovery live in the
    tune layer (:mod:`repro.tune.faults`), and every fault is drawn
    from counter-keyed streams so injected chaos is bit-deterministic
    under any execution backend.
    """

    oom_threshold: Optional[float] = None
    preemption: Optional[PreemptionSpec] = None
    churn: Optional[ChurnSpec] = None
    crash: Optional[CrashSpec] = None
    straggler: Optional[StragglerSpec] = None
    retry: Optional[RetryPolicy] = None

    @property
    def any_active(self) -> bool:
        return (
            self.oom_threshold is not None or self.fault_model() is not None
        )

    def fault_model(self) -> Optional[FaultModel]:
        """The tune-layer fault model, or None when every axis is off."""
        model = FaultModel(
            preemption=self.preemption,
            churn=self.churn,
            crash=self.crash,
            straggler=self.straggler,
        )
        return model if model.active else None

    def problems(self) -> List[str]:
        issues: List[str] = []
        if self.oom_threshold is not None and self.oom_threshold <= 0:
            issues.append("oom_threshold must be positive")
        for name in ("preemption", "churn", "crash", "straggler", "retry"):
            spec = getattr(self, name)
            if spec is not None:
                issues.extend(spec.problems(where=f"failures.{name}"))
        return issues

    def describe(self) -> List[str]:
        """Human-readable line(s) of the full failure model."""
        lines: List[str] = []
        if self.oom_threshold is not None:
            lines.append(f"OOM at {self.oom_threshold:g}x memory")
        if self.preemption is not None:
            p = self.preemption
            lines.append(
                f"preemption p={p.rate_per_epoch:g}/epoch, checkpoint "
                f"every {p.checkpoint_every_epochs} epoch(s), restore "
                f"{p.effective_restore_cost_s:g}s, max {p.max_events} "
                "event(s)"
            )
        if self.churn is not None:
            c = self.churn
            lines.append(
                f"node churn p={c.rate_per_epoch:g}/epoch, reschedule "
                f"after {c.reschedule_delay_s:g}s, max {c.max_events} "
                "event(s)"
            )
        if self.crash is not None:
            lines.append(f"crashes p={self.crash.rate_per_epoch:g}/epoch")
        if self.straggler is not None:
            s = self.straggler
            lines.append(
                f"stragglers {s.fraction:.0%} of placements at "
                f"{s.slowdown:g}x slowdown"
            )
        if self.retry is not None:
            r = self.retry
            lines.append(
                f"retry policy: {r.max_retries} retries, backoff "
                f"{r.backoff_base_s:g}s x {r.backoff_factor:g}"
            )
        return lines

    def as_dict(self) -> Dict:
        return {
            "oom_threshold": self.oom_threshold,
            "preemption": None
            if self.preemption is None
            else self.preemption.as_dict(),
            "churn": None if self.churn is None else self.churn.as_dict(),
            "crash": None if self.crash is None else self.crash.as_dict(),
            "straggler": None
            if self.straggler is None
            else self.straggler.as_dict(),
            "retry": None if self.retry is None else self.retry.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FailureSpec":
        return strict_from_dict(
            cls,
            data,
            "failure",
            convert={
                name: (
                    lambda value, spec_cls=spec_cls, name=name: strict_from_dict(
                        spec_cls, value, f"failures.{name}"
                    )
                    if isinstance(value, Mapping)
                    else value
                )
                for name, spec_cls in _FAULT_SPEC_TYPES.items()
            },
        )


@dataclass(frozen=True)
class Scenario:
    """One declared experiment; see the module docstring."""

    name: str
    title: str = ""
    exhibit: str = ""  # table heading, e.g. "Figure 11"
    description: str = ""
    kind: str = "tuning"
    cluster: ClusterSpec = PAPER_DISTRIBUTED_CLUSTER
    workloads: Tuple[str, ...] = ()
    algorithm: AlgorithmSpec = AlgorithmSpec(
        name="hyperband", params=(("eta", 3), ("max_epochs", 9))
    )
    systems: Tuple[SystemPolicySpec, ...] = ()
    tenancy: TenancySpec = TenancySpec()
    failures: FailureSpec = FailureSpec()
    repetitions: int = 1
    max_concurrent_trials: int = 16

    def __post_init__(self):
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "systems", tuple(self.systems))

    # -- validation --------------------------------------------------------
    def problems(self) -> List[str]:
        """Every validation issue, in a stable order (empty = valid)."""
        issues: List[str] = []
        if not self.name:
            issues.append("scenario name must be non-empty")
        if self.kind not in SCENARIO_KINDS:
            issues.append(f"unknown scenario kind {self.kind!r}")
        issues.extend(self.tenancy.problems())
        if self.repetitions < 1:
            issues.append("repetitions must be >= 1")
        if self.max_concurrent_trials < 1:
            issues.append("max_concurrent_trials must be >= 1")
        issues.extend(self.algorithm.problems())
        if self.kind == "analysis":
            return issues  # analysis scenarios plan through their own code
        if not self.workloads:
            issues.append("tuning scenario needs at least one workload")
        bad_algorithm = bool(self.algorithm.problems())
        unknown = [w for w in self.workloads if w not in _KNOWN_WORKLOADS]
        if unknown:
            issues.append(
                f"unknown workload(s) {unknown}; known: {sorted(_KNOWN_WORKLOADS)}"
            )
        if not self.systems:
            issues.append("scenario needs at least one system policy")
        labels = [p.label for p in self.systems]
        if len(set(labels)) != len(labels):
            issues.append(f"duplicate system labels {sorted(labels)}")
        nlp_flags = sorted(
            {
                get_workload(w).uses_embedding
                for w in self.workloads
                if w in _KNOWN_WORKLOADS
            }
        )
        for policy in self.systems:
            issues.extend(self._policy_problems(policy, nlp_flags))
        if not bad_algorithm and not unknown:
            issues.extend(self._algorithm_problems())
        if self.algorithm.name != "hyperband":
            scaled = [
                p.label
                for p in self.systems
                if p.kind in ("v1", "v2", "pipetune")
                and p.effective_sample_scale != 1.0
            ]
            if scaled:
                issues.append(
                    f"sample_scale only applies to hyperband; policies {scaled} "
                    f"would silently lose it under {self.algorithm.name!r} — "
                    "set sample_scale=1.0 explicitly"
                )
        if self.tenancy.shared:
            # Numeric tenancy checks live on TenancySpec.problems();
            # only the scenario-level interactions stay here.
            if self.repetitions != 1:
                issues.append(
                    "shared tenancy runs one arrival trace per policy; "
                    "repetitions must be 1 (vary the seed to repeat)"
                )
            if any(p.kind == "fixed" for p in self.systems):
                issues.append("fixed policies cannot run under shared tenancy")
        issues.extend(self.failures.problems())
        return issues

    def _policy_problems(
        self, policy: SystemPolicySpec, nlp_flags: Sequence[bool] = (True,)
    ) -> List[str]:
        where = f"policy {policy.label!r}"
        issues: List[str] = policy.problems(where)
        if policy.kind not in POLICY_KINDS:
            return issues
        if policy.kind == "fixed":
            if not policy.hyper or not policy.system:
                issues.append(f"{where}: fixed policy needs hyper and system params")
            else:
                try:
                    system = policy.system_params()
                except (TypeError, ValueError) as error:
                    issues.append(f"{where}: bad system params ({error})")
                else:
                    if (
                        system.cores > self.cluster.cores_per_node
                        or system.memory_gb > self.cluster.memory_gb_per_node
                    ):
                        issues.append(
                            f"{where}: cluster too small for requested system "
                            f"params ({system.cores} cores / "
                            f"{system.memory_gb:g} GB exceeds a "
                            f"{self.cluster.cores_per_node}-core / "
                            f"{self.cluster.memory_gb_per_node:g} GB node)"
                        )
                try:
                    policy.hyper_params()
                except (TypeError, ValueError) as error:
                    issues.append(f"{where}: bad hyper params ({error})")
            return issues
        # v1 / v2 / pipetune: check space overrides against the space
        # the policy will actually search — for every scenario workload
        # (the NLP space has an extra embedding_dim dimension a non-NLP
        # workload's space lacks) — and system feasibility.
        spaces = [
            joint_space(nlp=nlp) if policy.kind == "v2" else paper_hyper_space(nlp=nlp)
            for nlp in (nlp_flags or (True,))
        ]
        overrides = dict(policy.space_overrides)
        for param, choices in overrides.items():
            if any(param not in space for space in spaces):
                issues.append(
                    f"{where}: space override {param!r} not a "
                    f"{policy.kind} search dimension for every workload"
                )
            if not choices:
                issues.append(f"{where}: space override {param!r} has no choices")
        if policy.kind == "v2":
            system_domains = spaces[0].domains
            cores_choices = overrides.get("cores", system_domains["cores"].values)
            memory_choices = overrides.get(
                "memory_gb", system_domains["memory_gb"].values
            )
            if cores_choices and min(cores_choices) > self.cluster.cores_per_node:
                issues.append(
                    f"{where}: cluster too small for requested system params "
                    f"(smallest cores choice {min(cores_choices)} exceeds a "
                    f"{self.cluster.cores_per_node}-core node)"
                )
            if (
                memory_choices
                and min(memory_choices) > self.cluster.memory_gb_per_node
            ):
                issues.append(
                    f"{where}: cluster too small for requested system params "
                    f"(smallest memory choice {min(memory_choices):g} GB exceeds "
                    f"a {self.cluster.memory_gb_per_node:g} GB node)"
                )
        return issues

    def _algorithm_problems(self) -> List[str]:
        """Dry-build the algorithm once so bad kwargs fail at validation."""
        try:
            self.algorithm.build(paper_hyper_space(nlp=False), seed=0)
        except (TypeError, ValueError) as error:
            return [f"algorithm {self.algorithm.name!r} rejected its params: {error}"]
        return []

    def validate(self) -> "Scenario":
        issues = self.problems()
        if issues:
            raise ScenarioError(self.name, issues)
        return self

    # -- serialisation -----------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "title": self.title,
            "exhibit": self.exhibit,
            "description": self.description,
            "kind": self.kind,
            "cluster": self.cluster.as_dict(),
            "workloads": list(self.workloads),
            "algorithm": self.algorithm.as_dict(),
            "systems": [p.as_dict() for p in self.systems],
            "tenancy": self.tenancy.as_dict(),
            "failures": self.failures.as_dict(),
            "repetitions": self.repetitions,
            "max_concurrent_trials": self.max_concurrent_trials,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        data = dict(data)
        message = unknown_field_message(cls, data, "scenario")
        if message:
            raise ScenarioError(str(data.get("name", "?")), [message])
        if "cluster" in data:
            data["cluster"] = ClusterSpec.from_dict(data["cluster"])
        if "algorithm" in data:
            data["algorithm"] = AlgorithmSpec.from_dict(data["algorithm"])
        if "systems" in data:
            data["systems"] = tuple(
                SystemPolicySpec.from_dict(p) for p in data["systems"]
            )
        if "tenancy" in data:
            data["tenancy"] = TenancySpec.from_dict(data["tenancy"])
        if "failures" in data:
            data["failures"] = FailureSpec.from_dict(data["failures"])
        if "workloads" in data:
            data["workloads"] = tuple(data["workloads"])
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes) -> "Scenario":
        return replace(self, **changes)

    # -- construction ------------------------------------------------------
    @classmethod
    def builder(cls, name: str) -> "ScenarioBuilder":
        return ScenarioBuilder(name)


class ScenarioBuilder:
    """Fluent scenario construction; every method returns the builder."""

    def __init__(self, name: str):
        self._fields: Dict = {"name": name}

    def title(self, title: str) -> "ScenarioBuilder":
        self._fields["title"] = title
        return self

    def exhibit(self, exhibit: str) -> "ScenarioBuilder":
        self._fields["exhibit"] = exhibit
        return self

    def describe(self, description: str) -> "ScenarioBuilder":
        self._fields["description"] = description
        return self

    def kind(self, kind: str) -> "ScenarioBuilder":
        self._fields["kind"] = kind
        return self

    def cluster(
        self, spec: Optional[ClusterSpec] = None, **kwargs
    ) -> "ScenarioBuilder":
        self._fields["cluster"] = spec if spec is not None else ClusterSpec(**kwargs)
        return self

    def paper_cluster(self, distributed: bool = True) -> "ScenarioBuilder":
        self._fields["cluster"] = (
            PAPER_DISTRIBUTED_CLUSTER if distributed else PAPER_SINGLE_NODE
        )
        return self

    def workloads(self, *names: str) -> "ScenarioBuilder":
        self._fields["workloads"] = tuple(names)
        return self

    def workloads_of_type(self, *types: str) -> "ScenarioBuilder":
        names = []
        for workload_type in types:
            names.extend(w.name for w in workloads_of_type(workload_type))
        self._fields["workloads"] = tuple(names)
        return self

    def algorithm(self, name: str, **params) -> "ScenarioBuilder":
        self._fields["algorithm"] = AlgorithmSpec(name=name, params=_pairs(params))
        return self

    def compare(self, *policies: SystemPolicySpec) -> "ScenarioBuilder":
        self._fields["systems"] = tuple(policies)
        return self

    def single_tenant(self) -> "ScenarioBuilder":
        self._fields["tenancy"] = TenancySpec(mode="dedicated")
        return self

    def multi_tenant(self, **kwargs) -> "ScenarioBuilder":
        self._fields["tenancy"] = TenancySpec(mode="shared", **kwargs)
        return self

    def _merge_failures(self, **changes) -> "ScenarioBuilder":
        current = self._fields.get("failures", FailureSpec())
        self._fields["failures"] = replace(current, **changes)
        return self

    def inject_oom(self, threshold: float) -> "ScenarioBuilder":
        return self._merge_failures(oom_threshold=threshold)

    def inject_preemption(
        self,
        rate_per_epoch: float,
        checkpoint_every_epochs: int = 3,
        restore_cost_s: Optional[float] = None,
        max_events: int = 4,
    ) -> "ScenarioBuilder":
        return self._merge_failures(
            preemption=PreemptionSpec(
                rate_per_epoch=rate_per_epoch,
                checkpoint_every_epochs=checkpoint_every_epochs,
                restore_cost_s=restore_cost_s,
                max_events=max_events,
            )
        )

    def inject_churn(
        self,
        rate_per_epoch: float,
        reschedule_delay_s: float = 120.0,
        max_events: int = 2,
    ) -> "ScenarioBuilder":
        return self._merge_failures(
            churn=ChurnSpec(
                rate_per_epoch=rate_per_epoch,
                reschedule_delay_s=reschedule_delay_s,
                max_events=max_events,
            )
        )

    def inject_crashes(self, rate_per_epoch: float) -> "ScenarioBuilder":
        return self._merge_failures(
            crash=CrashSpec(rate_per_epoch=rate_per_epoch)
        )

    def inject_stragglers(
        self, fraction: float, slowdown: float = 2.0
    ) -> "ScenarioBuilder":
        return self._merge_failures(
            straggler=StragglerSpec(fraction=fraction, slowdown=slowdown)
        )

    def retry_policy(
        self,
        max_retries: int,
        backoff_base_s: float = 30.0,
        backoff_factor: float = 2.0,
    ) -> "ScenarioBuilder":
        return self._merge_failures(
            retry=RetryPolicy(
                max_retries=max_retries,
                backoff_base_s=backoff_base_s,
                backoff_factor=backoff_factor,
            )
        )

    def repetitions(self, count: int) -> "ScenarioBuilder":
        self._fields["repetitions"] = count
        return self

    def max_concurrent_trials(self, count: int) -> "ScenarioBuilder":
        self._fields["max_concurrent_trials"] = count
        return self

    def build(self, validate: bool = True) -> Scenario:
        scenario = Scenario(**self._fields)
        if validate:
            scenario.validate()
        return scenario
