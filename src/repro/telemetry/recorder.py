"""Telemetry: stream run metrics into the time-series store.

The paper uses InfluxDB as the storage backend for "information
regarding the collected system metrics" (§6). This module is that
integration layer: a :class:`MetricsRecorder` subscribes to node power
changes and wraps trial hooks so that every epoch's runtime, accuracy,
energy and system shape — plus the cluster power signal — land in a
:class:`~repro.tsdb.store.TimeSeriesStore`, queryable after the run
and persistable to disk.

Measurements written:

* ``node_power``   — tags: node; fields: watts (on every change)
* ``trial_epoch``  — tags: trial, workload; fields: epoch, duration_s,
  accuracy, energy_j, cores, memory_gb, profiled, probed
* ``trial_summary``— tags: trial, workload; fields: accuracy,
  training_time_s, energy_j, epochs
"""

from __future__ import annotations

from typing import Optional

from ..simulation.cluster import Node, SimCluster
from ..simulation.des import Environment
from ..tsdb.point import Point
from ..tsdb.store import TimeSeriesStore
from ..tune.trainer import TrialContext, TrialHooks
from ..tune.trial import EpochRecord, TrialResult


class MetricsRecorder:
    """Writes cluster and trial metrics into a TimeSeriesStore."""

    def __init__(
        self,
        env: Environment,
        cluster: SimCluster,
        store: Optional[TimeSeriesStore] = None,
        record_power: bool = True,
    ):
        self.env = env
        self.cluster = cluster
        self.store = store if store is not None else TimeSeriesStore()
        if record_power:
            for node in cluster.nodes:
                node.add_power_listener(self._on_power)
                # initial level so queries start at t=0
                self._on_power(node, env.now, node.power_watts)

    # -- power stream ------------------------------------------------------
    def _on_power(self, node: Node, now: float, watts: float) -> None:
        self.store.write(
            Point(
                measurement="node_power",
                time=now,
                tags={"node": node.spec.name},
                fields={"watts": float(watts)},
            )
        )

    # -- trial stream -------------------------------------------------------
    def record_epoch(self, ctx: TrialContext, record: EpochRecord) -> None:
        self.store.write(
            Point(
                measurement="trial_epoch",
                time=self.env.now,
                tags={"trial": ctx.trial_id, "workload": ctx.workload.name},
                fields={
                    "epoch": float(record.epoch),
                    "duration_s": record.duration_s,
                    "accuracy": record.accuracy,
                    "energy_j": record.energy_j,
                    "cores": float(record.system.cores),
                    "memory_gb": record.system.memory_gb,
                    "profiled": float(record.profiled),
                    "probed": float(record.probed),
                },
            )
        )

    def record_summary(self, ctx: TrialContext, result: TrialResult) -> None:
        self.store.write(
            Point(
                measurement="trial_summary",
                time=self.env.now,
                tags={"trial": ctx.trial_id, "workload": ctx.workload.name},
                fields={
                    "accuracy": result.accuracy,
                    "training_time_s": result.training_time_s,
                    "energy_j": result.energy_j,
                    "epochs": float(result.epochs_run),
                },
            )
        )

    def wrap_hooks(self, inner: Optional[TrialHooks] = None) -> "RecordingHooks":
        """Trial hooks that record metrics and delegate to ``inner``."""
        return RecordingHooks(self, inner or TrialHooks())

    # -- convenience queries ----------------------------------------------------
    def mean_cluster_power_w(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> float:
        """Time-unweighted mean of recorded node power samples."""
        values = self.store.field_values("node_power", "watts", start=start, end=end)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def trial_accuracy_series(self, trial_id: str):
        """[(time, accuracy)] for one trial's epochs."""
        return [
            (p.time, p.fields["accuracy"])
            for p in self.store.query("trial_epoch", tags={"trial": trial_id})
        ]

    def epochs_recorded(self, workload: Optional[str] = None) -> int:
        tags = {"workload": workload} if workload else None
        return len(self.store.query("trial_epoch", tags=tags))


class RecordingHooks(TrialHooks):
    """Decorator hooks: record every epoch, then delegate.

    Composes with any inner hooks (including PipeTune's) so telemetry
    never changes tuning behaviour.
    """

    def __init__(self, recorder: MetricsRecorder, inner: TrialHooks):
        self.recorder = recorder
        self.inner = inner

    def on_start(self, ctx: TrialContext) -> None:
        self.inner.on_start(ctx)

    def before_epoch(self, ctx: TrialContext, epoch: int):
        return self.inner.before_epoch(ctx, epoch)

    def wants_profiling(self, ctx: TrialContext, epoch: int) -> bool:
        return self.inner.wants_profiling(ctx, epoch)

    def is_probe_epoch(self, ctx: TrialContext, epoch: int) -> bool:
        return self.inner.is_probe_epoch(ctx, epoch)

    def epoch_extra_delay_s(self, ctx: TrialContext, epoch: int) -> float:
        return self.inner.epoch_extra_delay_s(ctx, epoch)

    def runout_inert(self, ctx: TrialContext, epoch: int) -> bool:
        # Never inert: every epoch record is written with an env.now
        # timestamp, so a coalesced replay would shift the series to
        # the window's end. Telemetry-wrapped trials step per epoch.
        return False

    def after_epoch(self, ctx: TrialContext, record: EpochRecord) -> None:
        self.recorder.record_epoch(ctx, record)
        self.inner.after_epoch(ctx, record)

    def on_end(self, ctx: TrialContext, result: TrialResult) -> None:
        self.recorder.record_summary(ctx, result)
        self.inner.on_end(ctx, result)
