"""Telemetry: run metrics streamed into the time-series store."""

from .recorder import MetricsRecorder, RecordingHooks

__all__ = ["MetricsRecorder", "RecordingHooks"]
