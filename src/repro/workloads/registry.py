"""The seven paper workloads (Table 3) and lookup helpers.

========  =========  =============  ========  ===========  ==========
Type      Model      Dataset        Datasize  Train files  Test files
========  =========  =============  ========  ===========  ==========
Type-I    LeNet5     MNIST          12 MB     60 000       10 000
Type-I    LeNet5     Fashion-MNIST  31 MB     60 000       10 000
Type-II   CNN        News20         15 MB     11 307       7 538
Type-II   LSTM       News20         15 MB     11 307       7 538
Type-III  Jacobi     Rodinia        26 MB     1 650        7 538
Type-III  SPK-means  Rodinia        26 MB     1 650        7 538
Type-III  BFS        Rodinia        26 MB     1 650        7 538
========  =========  =============  ========  ===========  ==========

Cost/accuracy coefficients are calibrated so magnitudes land near the
paper's: Type-I/II epochs take tens of seconds to minutes, Type-III
epochs take seconds, and best-config training times sit in the
hundreds of seconds for LeNet/MNIST (Table 2 reports 187–445 s).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .spec import WorkloadSpec

LENET_MNIST = WorkloadSpec(
    name="lenet-mnist",
    model="lenet5",
    dataset="mnist",
    workload_type="I",
    datasize_mb=12.0,
    train_files=60_000,
    test_files=10_000,
    compute_per_sample=6.0e-4,
    sync_per_core=5.5e-3,
    parallel_alpha=0.85,
    mem_base_gb=4.5,
    mem_per_sample_gb=1.5e-3,
    epoch_overhead_s=2.0,
    base_accuracy=0.935,
    convergence_rate=0.45,
    log_lr_opt=-2.0,
    log_lr_sigma=1.6,
    batch_penalty=0.022,
    dropout_opt=0.25,
    dropout_curvature=0.55,
    accuracy_noise=0.004,
)

LENET_FASHION = WorkloadSpec(
    name="lenet-fashion",
    model="lenet5",
    dataset="fashion-mnist",
    workload_type="I",
    datasize_mb=31.0,
    train_files=60_000,
    test_files=10_000,
    compute_per_sample=7.0e-4,
    sync_per_core=5.5e-3,
    parallel_alpha=0.85,
    mem_base_gb=4.8,
    mem_per_sample_gb=1.8e-3,
    epoch_overhead_s=2.2,
    base_accuracy=0.905,
    convergence_rate=0.40,
    log_lr_opt=-2.1,
    log_lr_sigma=1.5,
    batch_penalty=0.025,
    dropout_opt=0.28,
    dropout_curvature=0.6,
    accuracy_noise=0.005,
)

CNN_NEWS20 = WorkloadSpec(
    name="cnn-news20",
    model="cnn",
    dataset="news20",
    workload_type="II",
    datasize_mb=15.0,
    train_files=11_307,
    test_files=7_538,
    compute_per_sample=8.8e-3,
    sync_per_core=8.0e-2,
    parallel_alpha=0.8,
    mem_base_gb=5.5,
    mem_per_sample_gb=4.0e-3,
    mem_pressure_slope=1.8,
    epoch_overhead_s=4.0,
    uses_embedding=True,
    base_accuracy=0.84,
    convergence_rate=0.18,
    log_lr_opt=-2.3,
    log_lr_sigma=1.4,
    batch_penalty=0.03,
    dropout_opt=0.3,
    dropout_curvature=0.7,
    embedding_opt=200,
    accuracy_noise=0.006,
)

LSTM_NEWS20 = WorkloadSpec(
    name="lstm-news20",
    model="lstm",
    dataset="news20",
    workload_type="II",
    datasize_mb=15.0,
    train_files=11_307,
    test_files=7_538,
    compute_per_sample=1.15e-2,
    sync_per_core=9.5e-2,
    parallel_alpha=0.78,
    mem_base_gb=6.0,
    mem_per_sample_gb=4.5e-3,
    mem_pressure_slope=1.8,
    epoch_overhead_s=4.5,
    uses_embedding=True,
    base_accuracy=0.80,
    convergence_rate=0.15,
    log_lr_opt=-2.5,
    log_lr_sigma=1.3,
    batch_penalty=0.032,
    dropout_opt=0.32,
    dropout_curvature=0.7,
    embedding_opt=220,
    accuracy_noise=0.007,
)

JACOBI_RODINIA = WorkloadSpec(
    name="jacobi-rodinia",
    model="jacobi",
    dataset="rodinia",
    workload_type="III",
    datasize_mb=26.0,
    train_files=1_650,
    test_files=7_538,
    compute_per_sample=1.5e-3,
    sync_per_core=1.1e-2,
    parallel_alpha=0.8,
    mem_base_gb=3.2,
    mem_per_sample_gb=1.0e-3,
    epoch_overhead_s=0.5,
    base_accuracy=0.72,
    convergence_rate=0.32,
    log_lr_opt=-2.0,
    log_lr_sigma=1.4,
    batch_penalty=0.028,
    dropout_opt=0.2,
    dropout_curvature=0.5,
    accuracy_noise=0.008,
)

SPKMEANS_RODINIA = WorkloadSpec(
    name="spkmeans-rodinia",
    model="spkmeans",
    dataset="rodinia",
    workload_type="III",
    datasize_mb=26.0,
    train_files=1_650,
    test_files=7_538,
    compute_per_sample=1.8e-3,
    sync_per_core=1.3e-2,
    parallel_alpha=0.8,
    mem_base_gb=3.4,
    mem_per_sample_gb=1.2e-3,
    epoch_overhead_s=0.6,
    base_accuracy=0.65,
    convergence_rate=0.30,
    log_lr_opt=-1.8,
    log_lr_sigma=1.4,
    batch_penalty=0.026,
    dropout_opt=0.22,
    dropout_curvature=0.5,
    accuracy_noise=0.009,
)

BFS_RODINIA = WorkloadSpec(
    name="bfs-rodinia",
    model="bfs",
    dataset="rodinia",
    workload_type="III",
    datasize_mb=26.0,
    train_files=1_650,
    test_files=7_538,
    compute_per_sample=1.2e-3,
    sync_per_core=0.9e-2,
    parallel_alpha=0.82,
    mem_base_gb=3.0,
    mem_per_sample_gb=0.9e-3,
    epoch_overhead_s=0.4,
    base_accuracy=0.56,
    convergence_rate=0.34,
    log_lr_opt=-2.2,
    log_lr_sigma=1.4,
    batch_penalty=0.024,
    dropout_opt=0.18,
    dropout_curvature=0.5,
    accuracy_noise=0.009,
)

ALL_WORKLOADS: Tuple[WorkloadSpec, ...] = (
    LENET_MNIST,
    LENET_FASHION,
    CNN_NEWS20,
    LSTM_NEWS20,
    JACOBI_RODINIA,
    SPKMEANS_RODINIA,
    BFS_RODINIA,
)

_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in ALL_WORKLOADS}


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by its registry name (e.g. ``lenet-mnist``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def workloads_of_type(workload_type: str) -> List[WorkloadSpec]:
    """All workloads of a paper type (``"I"``, ``"II"`` or ``"III"``)."""
    if workload_type not in ("I", "II", "III"):
        raise ValueError("workload_type must be 'I', 'II' or 'III'")
    return [w for w in ALL_WORKLOADS if w.workload_type == workload_type]


def type12_workloads() -> List[WorkloadSpec]:
    """The distributed-testbed workloads (Figs 11 & 13)."""
    return workloads_of_type("I") + workloads_of_type("II")
