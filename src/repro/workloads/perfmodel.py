"""Analytic performance model: epoch time, utilisation, working set.

This module stands in for BigDL/Spark synchronous mini-batch SGD on the
paper's testbed. The model is the standard cost decomposition of
synchronous data-parallel SGD (the same one the paper uses to explain
Figure 3b in §3.2):

* each epoch performs ``U = ceil(n_train / batch_size)`` weight
  updates;
* per update, each of the ``k`` cores computes gradients for a
  ``batch_size / k`` slice — but never smaller than a granularity
  floor, below which per-core overheads stop the slice from shrinking;
* per update, the cores synchronise model parameters: a fixed cost plus
  a term growing with ``log2(k)`` (tree all-reduce);
* a memory-pressure multiplier kicks in when the allocated memory is
  smaller than the working set.

Consequences (matching the paper's observations):

* small batches ⇒ many updates ⇒ synchronisation dominates ⇒ *more
  cores slow the epoch down* (Fig 3b, batch 64);
* large batches ⇒ few updates ⇒ compute dominates ⇒ more cores help
  (Fig 3b, batch 1024);
* energy follows runtime with a core-count-dependent power draw
  (Fig 3c).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .spec import (
    BASE_CPU_FREQ_GHZ,
    HyperParams,
    SystemParams,
    TrialConfig,
    WorkloadSpec,
)

#: smallest per-core mini-batch slice that still amortises per-core
#: launch overheads (samples); below this, adding cores stops helping
#: the compute term. The JVM/BigDL task-launch overhead the paper runs
#: on makes tiny per-core slices unprofitable (§3.2).
MIN_CORE_SLICE = 64.0


@dataclass(frozen=True)
class EpochCost:
    """Breakdown of one epoch's simulated cost."""

    compute_s: float
    sync_s: float
    overhead_s: float
    mem_penalty: float
    total_s: float
    utilisation: float  # fraction of allocated cores actively computing


def updates_per_epoch(workload: WorkloadSpec, hyper: HyperParams) -> int:
    """Number of synchronous weight updates in one epoch."""
    return max(1, math.ceil(workload.train_files / hyper.batch_size))


def working_set_gb(workload: WorkloadSpec, hyper: HyperParams) -> float:
    """Resident memory needed by a trial (model + batch buffers)."""
    ws = workload.mem_base_gb + hyper.batch_size * workload.mem_per_sample_gb
    if workload.uses_embedding:
        # Embedding tables grow linearly with the embedding dimension.
        ws += 0.004 * hyper.embedding_dim
    return ws


def memory_penalty(
    workload: WorkloadSpec, hyper: HyperParams, system: SystemParams
) -> float:
    """Multiplicative slowdown when memory is short of the working set.

    1.0 when memory suffices; grows linearly with the shortfall ratio
    (spill/GC pressure in the JVM-based BigDL stack the paper runs on).
    """
    ws = working_set_gb(workload, hyper)
    if system.memory_gb >= ws:
        return 1.0
    shortfall = ws / system.memory_gb - 1.0
    return 1.0 + workload.mem_pressure_slope * shortfall


def epoch_cost(
    config: TrialConfig,
    epoch: int = 0,
    contention: float = 1.0,
    noisy: bool = True,
) -> EpochCost:
    """Simulated wall-clock cost of one training epoch.

    Parameters
    ----------
    config:
        Workload + hyperparameters + system parameters.
    epoch:
        Epoch index; only used to derive the deterministic noise draw.
    contention:
        Slowdown factor >= 1 from co-located jobs pinned to the same
        cores (used by the Fig 5 experiment). 1.0 means exclusive use.
    noisy:
        Disable to obtain the noise-free analytic expectation (useful
        for property tests of monotonicity).
    """
    if contention < 1.0:
        raise ValueError("contention factor must be >= 1")
    w, hp, sp = config.workload, config.hyper, config.system
    k = sp.cores
    updates = updates_per_epoch(w, hp)

    # -- compute term ---------------------------------------------------
    # Each core processes a batch slice; slices cannot shrink below the
    # granularity floor, and parallel scaling is sub-linear (the
    # k**(1-alpha) factor models cache/bandwidth interference).
    slice_size = max(hp.batch_size / k, MIN_CORE_SLICE)
    effective_slice = min(float(hp.batch_size), slice_size)
    scaling_loss = k ** (1.0 - w.parallel_alpha)
    compute_per_update = w.compute_per_sample * effective_slice * scaling_loss
    # DVFS extension: compute time scales inversely with clock speed
    # (synchronisation below is network/latency-bound and does not).
    compute_per_update *= BASE_CPU_FREQ_GHZ / sp.cpu_freq_ghz
    if w.uses_embedding:
        # Wider embeddings mean more FLOPs per sample.
        compute_per_update *= 0.7 + 0.3 * hp.embedding_dim / w.embedding_opt
    compute = updates * compute_per_update

    # -- synchronisation term --------------------------------------------
    # Fixed handshake + tree all-reduce growing with log2(cores).
    sync_per_update = w.sync_per_core * (0.15 + math.log2(k)) if k > 1 else (
        w.sync_per_core * 0.15
    )
    sync = updates * sync_per_update

    # -- memory pressure + overheads --------------------------------------
    penalty = memory_penalty(w, hp, sp)
    total = (compute + sync) * penalty * contention + w.epoch_overhead_s

    if noisy:
        rng = w.rng("epoch-noise", hp, sp, epoch)
        total *= max(0.5, 1.0 + rng.normal(0.0, w.runtime_noise))

    busy = compute / (compute + sync) if (compute + sync) > 0 else 1.0
    return EpochCost(
        compute_s=compute,
        sync_s=sync,
        overhead_s=w.epoch_overhead_s,
        mem_penalty=penalty,
        total_s=total,
        utilisation=busy,
    )


def epoch_time(
    config: TrialConfig, epoch: int = 0, contention: float = 1.0, noisy: bool = True
) -> float:
    """Convenience wrapper returning only the total epoch seconds."""
    return epoch_cost(config, epoch=epoch, contention=contention, noisy=noisy).total_s


def training_time(
    config: TrialConfig, contention: float = 1.0, noisy: bool = True
) -> float:
    """Wall-clock of a full training run (all epochs, no tuning)."""
    return sum(
        epoch_time(config, epoch=e, contention=contention, noisy=noisy)
        for e in range(config.hyper.epochs)
    )


def active_cores(config: TrialConfig, cost: EpochCost) -> float:
    """Average cores actively drawing compute power during an epoch.

    Synchronisation phases are communication-bound and draw less, which
    the power model captures as a lower effective busy-core count.
    """
    sync_draw_fraction = 0.45
    return config.system.cores * (
        cost.utilisation + sync_draw_fraction * (1.0 - cost.utilisation)
    )
