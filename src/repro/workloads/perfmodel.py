"""Analytic performance model: epoch time, utilisation, working set.

This module stands in for BigDL/Spark synchronous mini-batch SGD on the
paper's testbed. The model is the standard cost decomposition of
synchronous data-parallel SGD (the same one the paper uses to explain
Figure 3b in §3.2):

* each epoch performs ``U = ceil(n_train / batch_size)`` weight
  updates;
* per update, each of the ``k`` cores computes gradients for a
  ``batch_size / k`` slice — but never smaller than a granularity
  floor, below which per-core overheads stop the slice from shrinking;
* per update, the cores synchronise model parameters: a fixed cost plus
  a term growing with ``log2(k)`` (tree all-reduce);
* a memory-pressure multiplier kicks in when the allocated memory is
  smaller than the working set.

Consequences (matching the paper's observations):

* small batches ⇒ many updates ⇒ synchronisation dominates ⇒ *more
  cores slow the epoch down* (Fig 3b, batch 64);
* large batches ⇒ few updates ⇒ compute dominates ⇒ more cores help
  (Fig 3b, batch 1024);
* energy follows runtime with a core-count-dependent power draw
  (Fig 3c).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from .noise import clear_noise_blocks, noise_block
from .spec import (
    BASE_CPU_FREQ_GHZ,
    HyperParams,
    SystemParams,
    TrialConfig,
    WorkloadSpec,
)

#: smallest per-core mini-batch slice that still amortises per-core
#: launch overheads (samples); below this, adding cores stops helping
#: the compute term. The JVM/BigDL task-launch overhead the paper runs
#: on makes tiny per-core slices unprofitable (§3.2).
MIN_CORE_SLICE = 64.0


@dataclass(frozen=True)
class EpochCost:
    """Breakdown of one epoch's simulated cost."""

    compute_s: float
    sync_s: float
    overhead_s: float
    mem_penalty: float
    total_s: float
    utilisation: float  # fraction of allocated cores actively computing


@dataclass(frozen=True)
class EpochCostBatch:
    """One trial segment's epoch costs, synthesized in a single pass.

    The compute/sync/memory terms depend only on (workload, hyper,
    system, contention), so they are scalars shared by every epoch;
    ``total_s`` carries the per-epoch totals — the shared base times
    the epoch's noise factor, drawn as one vector from the trial's
    :class:`~repro.workloads.noise.NoiseBlock`. Element ``i`` is
    bit-identical to ``epoch_cost(config, epochs[i], ...).total_s``:
    both read the same block position and apply the same float ops.
    """

    compute_s: float
    sync_s: float
    overhead_s: float
    mem_penalty: float
    utilisation: float
    total_s: np.ndarray  # aligned with the requested epoch indices


def updates_per_epoch(workload: WorkloadSpec, hyper: HyperParams) -> int:
    """Number of synchronous weight updates in one epoch."""
    return max(1, math.ceil(workload.train_files / hyper.batch_size))


def working_set_gb(workload: WorkloadSpec, hyper: HyperParams) -> float:
    """Resident memory needed by a trial (model + batch buffers)."""
    ws = workload.mem_base_gb + hyper.batch_size * workload.mem_per_sample_gb
    if workload.uses_embedding:
        # Embedding tables grow linearly with the embedding dimension.
        ws += 0.004 * hyper.embedding_dim
    return ws


def memory_penalty(
    workload: WorkloadSpec, hyper: HyperParams, system: SystemParams
) -> float:
    """Multiplicative slowdown when memory is short of the working set.

    1.0 when memory suffices; grows linearly with the shortfall ratio
    (spill/GC pressure in the JVM-based BigDL stack the paper runs on).
    """
    ws = working_set_gb(workload, hyper)
    if system.memory_gb >= ws:
        return 1.0
    shortfall = ws / system.memory_gb - 1.0
    return 1.0 + workload.mem_pressure_slope * shortfall


@dataclass(frozen=True)
class _CostTerms:
    """Epoch-invariant cost terms of one (workload, hyper, system)."""

    compute_s: float
    sync_s: float
    mem_penalty: float
    utilisation: float


#: memoized epoch-invariant terms keyed on the specs' (cached) reprs.
#: The terms are pure in the frozen specs, so caching cannot change a
#: number — per-epoch stepping just stops recomputing updates/compute/
#: sync/penalty for every single epoch of a trial.
_TERMS_CACHE: Dict[Tuple[str, str, str], _CostTerms] = {}
_TERMS_CACHE_MAX = 4096


def _cost_terms(w: WorkloadSpec, hp: HyperParams, sp: SystemParams) -> _CostTerms:
    key = (repr(w), repr(hp), repr(sp))
    terms = _TERMS_CACHE.get(key)
    if terms is not None:
        return terms
    k = sp.cores
    updates = updates_per_epoch(w, hp)

    # -- compute term ---------------------------------------------------
    # Each core processes a batch slice; slices cannot shrink below the
    # granularity floor, and parallel scaling is sub-linear (the
    # k**(1-alpha) factor models cache/bandwidth interference).
    slice_size = max(hp.batch_size / k, MIN_CORE_SLICE)
    effective_slice = min(float(hp.batch_size), slice_size)
    scaling_loss = k ** (1.0 - w.parallel_alpha)
    compute_per_update = w.compute_per_sample * effective_slice * scaling_loss
    # DVFS extension: compute time scales inversely with clock speed
    # (synchronisation below is network/latency-bound and does not).
    compute_per_update *= BASE_CPU_FREQ_GHZ / sp.cpu_freq_ghz
    if w.uses_embedding:
        # Wider embeddings mean more FLOPs per sample.
        compute_per_update *= 0.7 + 0.3 * hp.embedding_dim / w.embedding_opt
    compute = updates * compute_per_update

    # -- synchronisation term --------------------------------------------
    # Fixed handshake + tree all-reduce growing with log2(cores).
    sync_per_update = w.sync_per_core * (0.15 + math.log2(k)) if k > 1 else (
        w.sync_per_core * 0.15
    )
    sync = updates * sync_per_update

    penalty = memory_penalty(w, hp, sp)
    busy = compute / (compute + sync) if (compute + sync) > 0 else 1.0
    terms = _CostTerms(
        compute_s=compute, sync_s=sync, mem_penalty=penalty, utilisation=busy
    )
    if len(_TERMS_CACHE) >= _TERMS_CACHE_MAX:
        _TERMS_CACHE.clear()
    _TERMS_CACHE[key] = terms
    return terms


def _epoch_noise_block(w: WorkloadSpec, hp: HyperParams, sp: SystemParams):
    """The trial's epoch-noise block: one stream for all its epochs."""
    return noise_block(w.runtime_noise, w.name, "epoch-noise", hp, sp)


def clear_cost_caches() -> None:
    """Drop the memoized cost terms and noise blocks (tests/benchmarks;
    both are pure in their keys, so clearing cannot change a number)."""
    _TERMS_CACHE.clear()
    clear_noise_blocks()


def epoch_cost(
    config: TrialConfig,
    epoch: int = 0,
    contention: float = 1.0,
    noisy: bool = True,
) -> EpochCost:
    """Simulated wall-clock cost of one training epoch.

    Parameters
    ----------
    config:
        Workload + hyperparameters + system parameters.
    epoch:
        Epoch index; only used to position the deterministic noise
        draw inside the trial's epoch-noise block.
    contention:
        Slowdown factor >= 1 from co-located jobs pinned to the same
        cores (used by the Fig 5 experiment). 1.0 means exclusive use.
    noisy:
        Disable to obtain the noise-free analytic expectation (useful
        for property tests of monotonicity).
    """
    if contention < 1.0:
        raise ValueError("contention factor must be >= 1")
    w, hp, sp = config.workload, config.hyper, config.system
    terms = _cost_terms(w, hp, sp)
    total = (
        (terms.compute_s + terms.sync_s) * terms.mem_penalty * contention
        + w.epoch_overhead_s
    )
    if noisy:
        block = _epoch_noise_block(w, hp, sp)
        total *= max(0.5, 1.0 + block.value(epoch))
    return EpochCost(
        compute_s=terms.compute_s,
        sync_s=terms.sync_s,
        overhead_s=w.epoch_overhead_s,
        mem_penalty=terms.mem_penalty,
        total_s=total,
        utilisation=terms.utilisation,
    )


def epoch_cost_batch(
    config: TrialConfig,
    epochs: Iterable[int],
    contention: float = 1.0,
    noisy: bool = True,
) -> EpochCostBatch:
    """Simulated cost of many epochs of one trial, in one pass.

    Computes the epoch-invariant terms once and applies the epoch-noise
    vector — one batched draw from the trial's noise block — in a
    single numpy expression. ``total_s[i]`` is bit-identical to
    ``epoch_cost(config, epochs[i], contention, noisy).total_s``, which
    is what lets the coalesced run-out in
    :func:`repro.tune.trainer.run_trial` consume the batch while
    per-epoch stepping keeps calling the scalar form.
    """
    if contention < 1.0:
        raise ValueError("contention factor must be >= 1")
    w, hp, sp = config.workload, config.hyper, config.system
    terms = _cost_terms(w, hp, sp)
    base = (
        (terms.compute_s + terms.sync_s) * terms.mem_penalty * contention
        + w.epoch_overhead_s
    )
    indices = np.asarray(epochs, dtype=np.intp)
    if noisy:
        block = _epoch_noise_block(w, hp, sp)
        totals = base * np.maximum(0.5, 1.0 + block.take(indices))
    else:
        totals = np.full(indices.shape, base, dtype=np.float64)
    return EpochCostBatch(
        compute_s=terms.compute_s,
        sync_s=terms.sync_s,
        overhead_s=w.epoch_overhead_s,
        mem_penalty=terms.mem_penalty,
        utilisation=terms.utilisation,
        total_s=totals,
    )


def epoch_time(
    config: TrialConfig, epoch: int = 0, contention: float = 1.0, noisy: bool = True
) -> float:
    """Convenience wrapper returning only the total epoch seconds."""
    return epoch_cost(config, epoch=epoch, contention=contention, noisy=noisy).total_s


def training_time(
    config: TrialConfig, contention: float = 1.0, noisy: bool = True
) -> float:
    """Wall-clock of a full training run (all epochs, no tuning)."""
    return sum(
        epoch_time(config, epoch=e, contention=contention, noisy=noisy)
        for e in range(config.hyper.epochs)
    )


def active_cores(config: TrialConfig, cost: "EpochCost | EpochCostBatch") -> float:
    """Average cores actively drawing compute power during an epoch.

    Utilisation is epoch-invariant (noise scales the total, not the
    compute/sync split), so an :class:`EpochCostBatch` yields the same
    single busy-core level as every one of its scalar epochs.

    Synchronisation phases are communication-bound and draw less, which
    the power model captures as a lower effective busy-core count.
    """
    sync_draw_fraction = 0.45
    return config.system.cores * (
        cost.utilisation + sync_draw_fraction * (1.0 - cost.utilisation)
    )
