"""Batched draw-ahead noise streams: one keyed stream per (trial, kind).

Before this layer, every per-epoch noise value cost one fresh Philox
stream: ``rng_for(name, "epoch-noise", hp, sp, epoch)`` built a
generator (~2-3µs after the PR 3 pooled adapter) for a *single* normal
draw. The one-generator-per-draw call shape — not construction cost —
was the remaining floor (ROADMAP, "Batched draw-ahead").

:class:`NoiseBlock` collapses it: all of a trial's draws for one noise
*kind* come from **one** counter-keyed stream,

```
stream = rng_for(*key_parts, "block")        # e.g. (name, "epoch-noise", hp, sp)
draws  = stream.normal(0.0, sigma, size=n)   # the whole trial at once
```

and per-epoch consumers index into the drawn vector. Two properties
make this exact rather than approximate:

* numpy Generators fill batched draws sequentially, so
  ``normal(size=n)`` is bit-identical to ``n`` scalar ``normal()``
  calls on the same stream — and a block that grows later (``normal``
  again on the *same* generator) extends the identical sequence.
  ``tests/test_noise_block.py`` holds numpy to both properties.
* a block's values are a pure function of (key parts, sigma, index):
  evicting and rebuilding a block replays the same stream from the
  key, so the bounded cache below can never change a number.

The stream key deliberately ends in the literal ``"block"`` and never
contains an epoch index — the epoch is a *position* in the stream, not
part of its identity. `repro lint` (DET002) enforces that statically
for every ``noise_block``/``NoiseBlock`` call site.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .spec import rng_for

#: initial draw-ahead depth; covers every paper trial budget (epochs
#: <= 100) after one doubling, while keeping throwaway blocks (single
#: epoch-0 probes) at one cheap 32-draw fill.
_INITIAL_DRAWS = 32

#: bounded block cache. Eviction is a full clear, like the stable_seed
#: digest cache: blocks are pure in their key, so a rebuilt block
#: replays identical values — eviction costs a redraw, never a
#: different number.
_BLOCK_CACHE: Dict[Tuple, "NoiseBlock"] = {}
_BLOCK_CACHE_MAX = 1024


class NoiseBlock:
    """All draws of one noise kind for one trial, from one stream.

    ``key_parts`` identify the stream exactly as a ``rng_for`` call
    would (stable identities only — spec reprs, trial seeds, kind
    literals); ``sigma`` is the normal scale applied to every draw.
    Draws are materialised ahead in geometrically-growing batches and
    served by index: ``value(epoch)`` is bit-identical to what the
    ``epoch``-th sequential ``normal(0.0, sigma)`` call on the stream
    would return, however the block grew to cover it.
    """

    __slots__ = ("_rng", "_sigma", "_values")

    def __init__(self, sigma: float, key_parts: Tuple):
        self._rng = rng_for(*key_parts, "block")
        self._sigma = float(sigma)
        self._values = np.empty(0, dtype=np.float64)

    def _ensure(self, count: int) -> None:
        """Draw ahead so at least ``count`` values are materialised."""
        have = len(self._values)
        if count <= have:
            return
        grow_to = max(count, 2 * have, _INITIAL_DRAWS)
        fresh = self._rng.normal(0.0, self._sigma, size=grow_to - have)
        self._values = np.concatenate((self._values, fresh))

    def value(self, index: int) -> float:
        """The ``index``-th draw of the stream (0-based), as a float."""
        if index < 0:
            raise ValueError("noise index must be >= 0")
        self._ensure(index + 1)
        return float(self._values[index])

    def take(self, indices: np.ndarray) -> np.ndarray:
        """The draws at ``indices``, as one float64 vector."""
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size == 0:
            return np.empty(0, dtype=np.float64)
        if indices.min() < 0:
            raise ValueError("noise index must be >= 0")
        self._ensure(int(indices.max()) + 1)
        return self._values[indices]


class NoiseMatrix:
    """Draw-ahead noise *rows*: one stream, fixed-width vector draws.

    The vector analogue of :class:`NoiseBlock` for consumers that draw a
    fixed-width normal vector per epoch (the PMU draws one value per
    hardware event). ``row(i)`` is bit-identical to the ``i``-th
    sequential ``normal(0.0, sigma, size=width)`` call on the stream:
    numpy fills multi-dimensional draws in C order from the same
    underlying double sequence, so growing by whole rows extends the
    stream exactly like the scalar case. Row indices are positions, not
    key parts — keep them dense (small multiples of the epoch), because
    the matrix materialises every row up to the largest index asked for.
    """

    __slots__ = ("_rng", "_sigma", "_width", "_rows")

    def __init__(self, sigma: float, width: int, key_parts: Tuple):
        if width <= 0:
            raise ValueError("row width must be positive")
        self._rng = rng_for(*key_parts, "block")
        self._sigma = float(sigma)
        self._width = int(width)
        self._rows = np.empty((0, width), dtype=np.float64)

    def _ensure(self, count: int) -> None:
        """Draw ahead so at least ``count`` rows are materialised."""
        have = len(self._rows)
        if count <= have:
            return
        grow_to = max(count, 2 * have, _INITIAL_ROWS)
        fresh = self._rng.normal(0.0, self._sigma, size=(grow_to - have, self._width))
        self._rows = np.concatenate((self._rows, fresh))

    def row(self, index: int) -> np.ndarray:
        """The ``index``-th vector draw of the stream (0-based)."""
        if index < 0:
            raise ValueError("noise index must be >= 0")
        self._ensure(index + 1)
        return self._rows[index].copy()


#: initial row-count for matrices; rows are wide (one value per PMU
#: event), so start smaller than the scalar blocks.
_INITIAL_ROWS = 8

_MATRIX_CACHE: Dict[Tuple, "NoiseMatrix"] = {}
_MATRIX_CACHE_MAX = 1024


def noise_block(sigma: float, *key_parts) -> NoiseBlock:
    """The (cached) :class:`NoiseBlock` for ``key_parts``.

    The cache key is the parts' reprs plus ``sigma`` — the same
    identity discipline as :func:`~repro.workloads.spec.stable_seed`,
    so two calls agree on a block exactly when they would have agreed
    on a stream.
    """
    key = (float(sigma), *map(repr, key_parts))
    block = _BLOCK_CACHE.get(key)
    if block is None:
        if len(_BLOCK_CACHE) >= _BLOCK_CACHE_MAX:
            _BLOCK_CACHE.clear()
        block = NoiseBlock(sigma, key_parts)
        _BLOCK_CACHE[key] = block
    return block


def noise_matrix(sigma: float, width: int, *key_parts) -> NoiseMatrix:
    """The (cached) :class:`NoiseMatrix` for ``key_parts``.

    Same identity discipline as :func:`noise_block`; the row width is
    part of the cache key because it is part of the draw shape.
    """
    key = (float(sigma), int(width), *map(repr, key_parts))
    matrix = _MATRIX_CACHE.get(key)
    if matrix is None:
        if len(_MATRIX_CACHE) >= _MATRIX_CACHE_MAX:
            _MATRIX_CACHE.clear()
        matrix = NoiseMatrix(sigma, width, key_parts)
        _MATRIX_CACHE[key] = matrix
    return matrix


def clear_noise_blocks() -> None:
    """Drop every cached block and matrix (tests / benchmarks; values
    are pure in their keys, so clearing can never change a result)."""
    _BLOCK_CACHE.clear()
    _MATRIX_CACHE.clear()
