"""Analytic accuracy model: the learning-curve response surface.

Stands in for real DNN training. Hyperparameter-tuning algorithms only
ever observe (config -> accuracy-per-epoch) pairs, so a calibrated
response surface exercises the identical tuning code paths as real
training, at simulation speed.

Shape of the model (standard in the HPO-benchmarking literature):

``acc(e) = A(hp) * (1 - exp(-r(hp) * e)) + noise``

* the asymptote ``A`` is the workload's base accuracy discounted by
  smooth penalties for off-optimal learning rate (log-gaussian), large
  batch sizes (per-doubling penalty — §3.1/Fig 3a of the paper),
  off-optimal dropout (quadratic) and, for NLP workloads, off-optimal
  embedding dimension;
* the rate ``r`` slows for large batches (fewer updates per epoch) and
  for small learning rates;
* noise is seeded deterministically per (workload, hyper, epoch), so
  experiments are reproducible yet trials look realistically jittery.

System parameters deliberately do **not** influence accuracy — that is
the core premise PipeTune exploits: cores/memory change *time and
energy*, not the learned model.
"""

from __future__ import annotations

import math

import numpy as np

from .noise import noise_block
from .spec import HyperParams, WorkloadSpec


def lr_penalty(workload: WorkloadSpec, learning_rate: float) -> float:
    """Log-gaussian accuracy discount for off-optimal learning rates."""
    log_lr = math.log10(learning_rate)
    delta = log_lr - workload.log_lr_opt
    return math.exp(-(delta * delta) / (2.0 * workload.log_lr_sigma**2))


def batch_penalty(workload: WorkloadSpec, batch_size: int) -> float:
    """Accuracy discount per doubling of batch size beyond 32.

    Larger batches reduce gradient stochasticity and generalise worse
    (paper §7.1.3, Fig 3a).
    """
    doublings = max(0.0, math.log2(batch_size / 32.0))
    return max(0.1, 1.0 - workload.batch_penalty * doublings)


def dropout_penalty(workload: WorkloadSpec, dropout: float) -> float:
    """Quadratic discount around the workload's best dropout rate."""
    delta = dropout - workload.dropout_opt
    return max(0.1, 1.0 - workload.dropout_curvature * delta * delta)


def embedding_penalty(workload: WorkloadSpec, embedding_dim: int) -> float:
    """Discount for NLP models with too-small / too-large embeddings."""
    if not workload.uses_embedding:
        return 1.0
    ratio = embedding_dim / workload.embedding_opt
    delta = math.log2(max(ratio, 1e-6))
    return max(0.1, 1.0 - 0.05 * delta * delta)


def asymptotic_accuracy(workload: WorkloadSpec, hyper: HyperParams) -> float:
    """Best accuracy the configuration converges to (noise-free)."""
    return (
        workload.base_accuracy
        * lr_penalty(workload, hyper.learning_rate)
        * batch_penalty(workload, hyper.batch_size)
        * dropout_penalty(workload, hyper.dropout)
        * embedding_penalty(workload, hyper.embedding_dim)
    )


def convergence_rate(workload: WorkloadSpec, hyper: HyperParams) -> float:
    """Per-epoch convergence-rate constant for the learning curve."""
    batch_slowdown = (32.0 / hyper.batch_size) ** 0.2 if hyper.batch_size > 32 else 1.0
    lr_ratio = hyper.learning_rate / (10.0**workload.log_lr_opt)
    lr_factor = min(1.25, lr_ratio**0.4)
    return workload.convergence_rate * batch_slowdown * lr_factor


def accuracy_at_epoch(
    workload: WorkloadSpec,
    hyper: HyperParams,
    epoch: int,
    trial_seed: int = 0,
    noisy: bool = True,
) -> float:
    """Validation accuracy after ``epoch`` completed epochs (1-based).

    ``epoch=0`` is the untrained model (random-guess floor).
    """
    if epoch < 0:
        raise ValueError("epoch must be >= 0")
    floor = 0.05 * workload.base_accuracy
    if epoch == 0:
        return floor
    a_max = asymptotic_accuracy(workload, hyper)
    rate = convergence_rate(workload, hyper)
    acc = floor + (a_max - floor) * (1.0 - math.exp(-rate * epoch))
    if noisy:
        acc += _acc_noise_block(workload, hyper, trial_seed).value(epoch)
    return min(1.0, max(0.0, acc))


def _acc_noise_block(workload: WorkloadSpec, hyper: HyperParams, trial_seed: int):
    """The trial's accuracy-noise block: one stream, indexed by epoch."""
    return noise_block(
        workload.accuracy_noise, workload.name, "acc-noise", hyper, trial_seed
    )


def accuracy_curve(
    workload: WorkloadSpec,
    hyper: HyperParams,
    epochs: int,
    trial_seed: int = 0,
    noisy: bool = True,
) -> np.ndarray:
    """Accuracies after epochs ``1..epochs``, synthesized in one pass.

    The learning-curve invariants (floor, asymptote, rate) are computed
    once instead of per epoch, and the noise is applied as one batched
    vector from the trial's accuracy-noise block. Element ``e-1`` is
    bit-identical to ``accuracy_at_epoch(workload, hyper, e, ...)``:
    the per-epoch exponential stays scalar ``math.exp`` (transcendental
    vector kernels are not guaranteed to round identically) and the
    noise block serves both forms from the same stream positions.
    """
    if epochs < 0:
        raise ValueError("epochs must be >= 0")
    if epochs == 0:
        return np.empty(0, dtype=np.float64)
    floor = 0.05 * workload.base_accuracy
    a_max = asymptotic_accuracy(workload, hyper)
    rate = convergence_rate(workload, hyper)
    span = a_max - floor
    curve = np.array(
        [floor + span * (1.0 - math.exp(-rate * e)) for e in range(1, epochs + 1)],
        dtype=np.float64,
    )
    if noisy:
        block = _acc_noise_block(workload, hyper, trial_seed)
        curve = curve + block.take(np.arange(1, epochs + 1))
    return np.minimum(1.0, np.maximum(0.0, curve))


def final_accuracy(
    workload: WorkloadSpec,
    hyper: HyperParams,
    trial_seed: int = 0,
    noisy: bool = True,
) -> float:
    """Accuracy after the configured number of epochs."""
    return accuracy_at_epoch(
        workload, hyper, hyper.epochs, trial_seed=trial_seed, noisy=noisy
    )


def learning_curve(
    workload: WorkloadSpec,
    hyper: HyperParams,
    trial_seed: int = 0,
    noisy: bool = True,
):
    """List of accuracies after epochs ``1..hyper.epochs``.

    Thin wrapper over :func:`accuracy_curve` (bit-identical to the
    historical per-epoch loop; the curve synthesis is batched).
    """
    return accuracy_curve(
        workload, hyper, hyper.epochs, trial_seed=trial_seed, noisy=noisy
    ).tolist()
