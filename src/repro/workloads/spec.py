"""Workload, hyperparameter and system-parameter descriptions.

Terminology follows the paper (§3.3): a *workload* is a (model,
dataset) pair; *hyperparameters* are model-external knobs fixed before
training; *system parameters* are the configurable resources of the
machine the trial runs on (cores, memory).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np


#: memoized sha256 digests keyed on the repr tuple of the parts. Every
#: PMU read / epoch-noise draw re-derives its seed, so a small exhibit
#: makes thousands of stable_seed calls with heavily repeated keys; the
#: digest is pure in the reprs, so caching cannot change any stream.
_SEED_CACHE: Dict[Tuple[str, ...], int] = {}
_SEED_CACHE_MAX = 1 << 16


def stable_seed(*parts) -> int:
    """Deterministic 63-bit seed from arbitrary hashable parts.

    Python's builtin ``hash`` is salted per interpreter run, so every
    stochastic component in the reproduction derives its RNG from this
    digest instead — rerunning any experiment reproduces identical
    numbers (DESIGN.md §5).
    """
    key = tuple(map(repr, parts))
    seed = _SEED_CACHE.get(key)
    if seed is None:
        digest = hashlib.sha256("\x1f".join(key).encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF
        if len(_SEED_CACHE) >= _SEED_CACHE_MAX:
            _SEED_CACHE.clear()
        _SEED_CACHE[key] = seed
    return seed


def _cache_repr(cls):
    """Memoize a frozen dataclass's generated ``repr`` per instance.

    Every RNG derivation builds its :func:`stable_seed` key from the
    reprs of the participating spec objects, which makes dataclass repr
    construction a measurable share of simulated-epoch cost. The
    instances are immutable, so the exact generated string (same bytes,
    hence same digests and random streams) is computed once and cached.
    """
    generated = cls.__repr__

    def __repr__(self) -> str:
        cached = self.__dict__.get("_cached_repr")
        if cached is None:
            cached = generated(self)
            object.__setattr__(self, "_cached_repr", cached)
        return cached

    __repr__.__qualname__ = f"{cls.__qualname__}.__repr__"
    cls.__repr__ = __repr__
    return cls


def rng_for(*parts) -> np.random.Generator:
    """A numpy Generator seeded by :func:`stable_seed`."""
    return np.random.default_rng(stable_seed(*parts))


@_cache_repr
@dataclass(frozen=True)
class HyperParams:
    """The five hyperparameters tuned in the paper's evaluation (§7.1.3).

    Ranges (inclusive) as evaluated by the paper:

    * ``batch_size``      — 32 .. 1024
    * ``dropout``         — 0.0 .. 0.5
    * ``embedding_dim``   — 50 .. 300 (NLP workloads only)
    * ``learning_rate``   — 0.001 .. 0.1
    * ``epochs``          — 10 .. 100
    """

    batch_size: int = 32
    dropout: float = 0.25
    embedding_dim: int = 128
    learning_rate: float = 0.01
    epochs: int = 10

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")

    def replace(self, **changes) -> "HyperParams":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, float]:
        return {
            "batch_size": self.batch_size,
            "dropout": self.dropout,
            "embedding_dim": self.embedding_dim,
            "learning_rate": self.learning_rate,
            "epochs": self.epochs,
        }

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "HyperParams":
        known = {
            k: values[k]
            for k in (
                "batch_size",
                "dropout",
                "embedding_dim",
                "learning_rate",
                "epochs",
            )
            if k in values
        }
        if "batch_size" in known:
            known["batch_size"] = int(round(known["batch_size"]))
        if "embedding_dim" in known:
            known["embedding_dim"] = int(round(known["embedding_dim"]))
        if "epochs" in known:
            known["epochs"] = int(round(known["epochs"]))
        return cls(**known)


#: nominal clock of the simulated Intel E3 nodes (GHz); the default
#: frequency, so configurations that do not touch DVFS are unchanged.
BASE_CPU_FREQ_GHZ = 3.6


@_cache_repr
@dataclass(frozen=True)
class SystemParams:
    """System parameters tuned by PipeTune (§7.1.4).

    Evaluation ranges: cores in [4, 16], memory in [4, 32] GB.
    ``cpu_freq_ghz`` implements the paper's stated extension ("the same
    mechanisms can be applied to any other parameter of interest (e.g.,
    CPU frequency)"); it defaults to the nominal clock so the core
    experiments are unaffected.
    """

    cores: int = 4
    memory_gb: float = 4.0
    cpu_freq_ghz: float = BASE_CPU_FREQ_GHZ

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if not 0.5 <= self.cpu_freq_ghz <= 6.0:
            raise ValueError("cpu_freq_ghz outside plausible DVFS range")

    def replace(self, **changes) -> "SystemParams":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, float]:
        return {
            "cores": self.cores,
            "memory_gb": self.memory_gb,
            "cpu_freq_ghz": self.cpu_freq_ghz,
        }

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "SystemParams":
        out = {}
        if "cores" in values:
            out["cores"] = int(round(values["cores"]))
        if "memory_gb" in values:
            out["memory_gb"] = float(values["memory_gb"])
        if "cpu_freq_ghz" in values:
            out["cpu_freq_ghz"] = float(values["cpu_freq_ghz"])
        return cls(**out)


# Paper evaluation grids (§7.2): the probing/ground-truth campaign varies
# memory over {4, 8, 16, 32} GB and cores over {4, 8, 16}.
PAPER_CORE_GRID: Tuple[int, ...] = (4, 8, 16)
PAPER_MEMORY_GRID_GB: Tuple[float, ...] = (4.0, 8.0, 16.0, 32.0)
PAPER_BATCH_GRID: Tuple[int, ...] = (32, 64, 512, 1024)


def paper_system_grid() -> Tuple[SystemParams, ...]:
    """The 12-point (cores x memory) grid probed in the paper (§7.2)."""
    return tuple(
        SystemParams(cores=c, memory_gb=m)
        for c in PAPER_CORE_GRID
        for m in PAPER_MEMORY_GRID_GB
    )


@_cache_repr
@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one (model, dataset) workload.

    The cost/accuracy coefficients parameterise the analytic models in
    :mod:`repro.workloads.perfmodel` and :mod:`repro.workloads.accuracy`;
    they are calibrated so that the magnitudes roughly match the paper's
    Table 3 workloads (epoch durations of minutes for Type-I/II, seconds
    for Type-III).
    """

    name: str
    model: str
    dataset: str
    workload_type: str  # "I", "II" or "III"
    datasize_mb: float
    train_files: int
    test_files: int
    # --- cost-model coefficients -------------------------------------
    #: seconds of single-core compute per sample at reference settings
    compute_per_sample: float = 2.0e-3
    #: seconds of synchronisation cost per extra core per weight update
    sync_per_core: float = 1.2e-3
    #: parallel-efficiency exponent: speedup(cores) ~ cores**alpha
    parallel_alpha: float = 0.85
    #: resident working set independent of batch (GB)
    mem_base_gb: float = 1.5
    #: extra working set per sample in the batch (GB)
    mem_per_sample_gb: float = 2.0e-3
    #: slowdown slope when memory is short of the working set
    mem_pressure_slope: float = 1.5
    #: fixed per-epoch overhead (data loading, checkpointing) seconds
    epoch_overhead_s: float = 2.0
    #: is the workload an NLP model with an embedding layer?
    uses_embedding: bool = False
    # --- accuracy-model coefficients ----------------------------------
    #: asymptotic accuracy under ideal hyperparameters, in [0, 1]
    base_accuracy: float = 0.93
    #: convergence-rate constant (per epoch)
    convergence_rate: float = 0.35
    #: log10 of the best learning rate
    log_lr_opt: float = -2.0
    #: width (in log10 lr) of the learning-rate sweet spot
    log_lr_sigma: float = 0.8
    #: accuracy penalty factor per doubling of batch over 32
    batch_penalty: float = 0.035
    #: best dropout value
    dropout_opt: float = 0.25
    #: curvature of the dropout penalty
    dropout_curvature: float = 0.55
    #: best embedding dimension (NLP only)
    embedding_opt: int = 200
    #: trial-to-trial accuracy noise (std, absolute accuracy)
    accuracy_noise: float = 0.004
    #: epoch-to-epoch runtime noise (std, relative)
    runtime_noise: float = 0.02

    def __post_init__(self):
        if self.workload_type not in ("I", "II", "III"):
            raise ValueError("workload_type must be 'I', 'II' or 'III'")
        if not 0 < self.base_accuracy <= 1:
            raise ValueError("base_accuracy must be in (0, 1]")
        if self.train_files < 1:
            raise ValueError("train_files must be >= 1")

    @property
    def key(self) -> str:
        return self.name

    def seed(self, *parts) -> int:
        return stable_seed(self.name, *parts)

    def rng(self, *parts) -> np.random.Generator:
        return rng_for(self.name, *parts)


@_cache_repr
@dataclass(frozen=True)
class TrialConfig:
    """Everything needed to run one training trial."""

    workload: WorkloadSpec
    hyper: HyperParams = field(default_factory=HyperParams)
    system: SystemParams = field(default_factory=SystemParams)

    def replace(self, **changes) -> "TrialConfig":
        return replace(self, **changes)
