"""Workload, hyperparameter and system-parameter descriptions.

Terminology follows the paper (§3.3): a *workload* is a (model,
dataset) pair; *hyperparameters* are model-external knobs fixed before
training; *system parameters* are the configurable resources of the
machine the trial runs on (cores, memory).
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np


#: memoized sha256 digests keyed on the repr tuple of the parts. Every
#: PMU read / epoch-noise draw re-derives its seed, so a small exhibit
#: makes thousands of stable_seed calls with heavily repeated keys; the
#: digest is pure in the reprs, so caching cannot change any stream.
_SEED_CACHE: Dict[Tuple[str, ...], int] = {}
_SEED_CACHE_MAX = 1 << 16


def stable_seed(*parts) -> int:
    """Deterministic 63-bit seed from arbitrary hashable parts.

    Python's builtin ``hash`` is salted per interpreter run, so every
    stochastic component in the reproduction derives its RNG from this
    digest instead — rerunning any experiment reproduces identical
    numbers (DESIGN.md §5).
    """
    key = tuple(map(repr, parts))
    seed = _SEED_CACHE.get(key)
    if seed is None:
        digest = hashlib.sha256("\x1f".join(key).encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF
        if len(_SEED_CACHE) >= _SEED_CACHE_MAX:
            _SEED_CACHE.clear()
        _SEED_CACHE[key] = seed
    return seed


def _cache_repr(cls):
    """Memoize a frozen dataclass's generated ``repr`` per instance.

    Every RNG derivation builds its :func:`stable_seed` key from the
    reprs of the participating spec objects, which makes dataclass repr
    construction a measurable share of simulated-epoch cost. The
    instances are immutable, so the exact generated string (same bytes,
    hence same digests and random streams) is computed once and cached.
    """
    generated = cls.__repr__

    def __repr__(self) -> str:
        cached = self.__dict__.get("_cached_repr")
        if cached is None:
            cached = generated(self)
            object.__setattr__(self, "_cached_repr", cached)
        return cached

    __repr__.__qualname__ = f"{cls.__qualname__}.__repr__"
    cls.__repr__ = __repr__
    return cls


# ---------------------------------------------------------------------------
# Counter-keyed Philox RNG subsystem
# ---------------------------------------------------------------------------
#
# Every stochastic component derives its stream as
# ``Generator(Philox(key=stable_seed(...)))``: the 63-bit digest keys the
# Philox counter cipher directly, with no SeedSequence entropy-mixing
# stage between digest and stream. The determinism contract (see
# benchmarks/README.md) is defined by that reference construction; the
# adapter below produces bit-identical streams through a cheaper build
# path, and tests/test_rng_philox.py holds it to the reference.
#
# Why not ``np.random.default_rng(seed)``: constructing PCG64 spins up a
# SeedSequence per call (~9µs), and the simulator derives a fresh
# stream per (workload, purpose, epoch) tuple — construction, not
# drawing, dominated the per-epoch cost after PR 2. ``Philox.__init__``
# still pays for an entropy-gathering SeedSequence it then discards, so
# the fast path avoids ``__init__`` entirely:
#
# * pool miss — build ``Philox(seed=_KeyedSeed)`` where ``_KeyedSeed``
#   is a minimal ISeedSequence stand-in whose ``generate_state`` hands
#   back the key words verbatim (no entropy, no hashing);
# * pool hit — take a previously-built Philox core from the freelist
#   and overwrite its full state (key, counter, buffer) through the
#   public ``.state`` setter, which copies values into the C struct.
#
# :class:`PhiloxGenerator` returns its core to the freelist on garbage
# collection, so steady-state stream derivation costs one state reset
# plus one Generator wrapper (~2µs) instead of a full construction.
# The subsystem is self-verifying: at import, both build paths are
# compared word-for-word against the reference constructor and the
# fast path is disabled wholesale on any mismatch (future numpy
# versions degrade to slow-but-correct, never to different streams).
# Like the rest of the simulator, the freelist is not thread-safe.

_MASK64 = (1 << 64) - 1
_PHILOX_KEY_MAX = (1 << 128) - 1


class _KeyedSeed:
    """ISeedSequence stand-in that delivers a preset Philox key.

    ``Philox(seed=...)`` asks its seed sequence for exactly the two
    64-bit key words; handing them back verbatim makes ``Philox(seed=
    _KeyedSeed)`` construct the same state as ``Philox(key=...)``
    without the SeedSequence entropy/hash stage.
    """

    __slots__ = ("words",)

    def __init__(self):
        self.words = np.zeros(2, dtype=np.uint64)

    def generate_state(self, n_words, dtype=np.uint32):
        if n_words != 2 or dtype is not np.uint64:
            raise TypeError(
                "unexpected key request; counter-keyed fast path outdated"
            )
        return self.words

    def spawn(self, n_children):
        raise TypeError("rng_for streams do not support seed spawning")


np.random.bit_generator.ISpawnableSeedSequence.register(_KeyedSeed)

_KEYED_SEED = _KeyedSeed()
#: freelist of Philox cores recycled by PhiloxGenerator.__del__; kept
#: small — depth only grows with simultaneously-live generators.
_PHILOX_POOL: list = []
_PHILOX_POOL_MAX = 64
#: template state dict reused for pool-hit resets (the ``.state``
#: setter copies every word out of it, so sharing one dict is safe).
_STATE_TEMPLATE = np.random.Philox(key=0).state
_TEMPLATE_KEY = _STATE_TEMPLATE["state"]["key"]
_TEMPLATE_COUNTER = _STATE_TEMPLATE["state"]["counter"]


class PhiloxGenerator(np.random.Generator):
    """Generator whose Philox core is recycled through the freelist."""

    __slots__ = ()

    def __del__(self):
        pool = _PHILOX_POOL
        if pool is None or len(pool) >= _PHILOX_POOL_MAX:
            return
        try:
            core = self.bit_generator
            # Recycle only when this generator held the last reference.
            # A caller that kept ``.bit_generator`` alive beyond the
            # Generator must retain its stream — pooling it would let a
            # later rng_for silently re-key it in place. Sole ownership
            # is exactly three references here: the dying generator's
            # slot, the ``core`` local, and getrefcount's argument.
            if sys.getrefcount(core) <= 3:
                pool.append(core)
        except Exception:
            # interpreter shutdown: globals may already be torn down
            pass


def _reference_philox_generator(key: int) -> np.random.Generator:
    """The defining construction: Generator(Philox(key=stable_seed))."""
    return np.random.Generator(np.random.Philox(key=key))


#: total stream constructions since import (pool hits, misses and
#: reference fallbacks alike). Instrumentation for the batched
#: draw-ahead contract: the per-run construction count is the metric
#: the NoiseBlock layer optimises, so it stays measurable
#: (tests/test_noise_block.py bounds it; benchmarks/README.md records
#: the fig09 A/B).
_CONSTRUCTION_COUNT = 0


def philox_construction_count() -> int:
    """Streams constructed via :func:`philox_generator` since import."""
    return _CONSTRUCTION_COUNT


def philox_generator(key: int) -> np.random.Generator:
    """A fresh ``Generator(Philox(key=key))``, built the cheap way.

    Streams are bit-identical to :func:`_reference_philox_generator`
    for every key in [0, 2**128); the import-time self-check falls back
    to the reference constructor if the fast path ever diverges.
    """
    global _CONSTRUCTION_COUNT
    if not 0 <= key <= _PHILOX_KEY_MAX:
        raise ValueError("Philox key must be an integer in [0, 2**128)")
    _CONSTRUCTION_COUNT += 1
    if not _FAST_CONSTRUCTION:
        return _reference_philox_generator(key)
    if _PHILOX_POOL:
        bg = _PHILOX_POOL.pop()
        _TEMPLATE_KEY[0] = key & _MASK64
        _TEMPLATE_KEY[1] = key >> 64
        _TEMPLATE_COUNTER[:] = 0
        bg.state = _STATE_TEMPLATE
    else:
        _KEYED_SEED.words[0] = key & _MASK64
        _KEYED_SEED.words[1] = key >> 64
        bg = np.random.Philox(seed=_KEYED_SEED)
    return PhiloxGenerator(bg)


def _philox_fast_path_ok() -> bool:
    """Verify both fast build paths against the reference, word-for-word."""
    try:
        for key in (0, 1, 0x0123456789ABCDEF, (1 << 127) + 12345):
            reference = _reference_philox_generator(key).bit_generator.state
            # pool-miss path (freshly drained pool), then pool-hit path
            _PHILOX_POOL.clear()
            for _ in range(2):
                generator = philox_generator(key)
                state = generator.bit_generator.state
                if state["bit_generator"] != reference["bit_generator"]:
                    return False
                for field_name in ("key", "counter"):
                    if not np.array_equal(
                        state["state"][field_name], reference["state"][field_name]
                    ):
                        return False
                if (
                    not np.array_equal(state["buffer"], reference["buffer"])
                    or state["buffer_pos"] != reference["buffer_pos"]
                    or state["has_uint32"] != reference["has_uint32"]
                    or state["uinteger"] != reference["uinteger"]
                ):
                    return False
                del generator  # recycles the core: next lap is a pool hit
        _PHILOX_POOL.clear()
        return True
    except Exception:
        return False


_FAST_CONSTRUCTION = True
_FAST_CONSTRUCTION = _philox_fast_path_ok()


def rng_for(*parts) -> np.random.Generator:
    """A numpy Generator on the Philox stream keyed by :func:`stable_seed`."""
    return philox_generator(stable_seed(*parts))


@_cache_repr
@dataclass(frozen=True)
class HyperParams:
    """The five hyperparameters tuned in the paper's evaluation (§7.1.3).

    Ranges (inclusive) as evaluated by the paper:

    * ``batch_size``      — 32 .. 1024
    * ``dropout``         — 0.0 .. 0.5
    * ``embedding_dim``   — 50 .. 300 (NLP workloads only)
    * ``learning_rate``   — 0.001 .. 0.1
    * ``epochs``          — 10 .. 100
    """

    batch_size: int = 32
    dropout: float = 0.25
    embedding_dim: int = 128
    learning_rate: float = 0.01
    epochs: int = 10

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")

    def replace(self, **changes) -> "HyperParams":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, float]:
        return {
            "batch_size": self.batch_size,
            "dropout": self.dropout,
            "embedding_dim": self.embedding_dim,
            "learning_rate": self.learning_rate,
            "epochs": self.epochs,
        }

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "HyperParams":
        known = {
            k: values[k]
            for k in (
                "batch_size",
                "dropout",
                "embedding_dim",
                "learning_rate",
                "epochs",
            )
            if k in values
        }
        if "batch_size" in known:
            known["batch_size"] = int(round(known["batch_size"]))
        if "embedding_dim" in known:
            known["embedding_dim"] = int(round(known["embedding_dim"]))
        if "epochs" in known:
            known["epochs"] = int(round(known["epochs"]))
        return cls(**known)


#: nominal clock of the simulated Intel E3 nodes (GHz); the default
#: frequency, so configurations that do not touch DVFS are unchanged.
BASE_CPU_FREQ_GHZ = 3.6


@_cache_repr
@dataclass(frozen=True)
class SystemParams:
    """System parameters tuned by PipeTune (§7.1.4).

    Evaluation ranges: cores in [4, 16], memory in [4, 32] GB.
    ``cpu_freq_ghz`` implements the paper's stated extension ("the same
    mechanisms can be applied to any other parameter of interest (e.g.,
    CPU frequency)"); it defaults to the nominal clock so the core
    experiments are unaffected.
    """

    cores: int = 4
    memory_gb: float = 4.0
    cpu_freq_ghz: float = BASE_CPU_FREQ_GHZ

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if not 0.5 <= self.cpu_freq_ghz <= 6.0:
            raise ValueError("cpu_freq_ghz outside plausible DVFS range")

    def replace(self, **changes) -> "SystemParams":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, float]:
        return {
            "cores": self.cores,
            "memory_gb": self.memory_gb,
            "cpu_freq_ghz": self.cpu_freq_ghz,
        }

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "SystemParams":
        out = {}
        if "cores" in values:
            out["cores"] = int(round(values["cores"]))
        if "memory_gb" in values:
            out["memory_gb"] = float(values["memory_gb"])
        if "cpu_freq_ghz" in values:
            out["cpu_freq_ghz"] = float(values["cpu_freq_ghz"])
        return cls(**out)


# Paper evaluation grids (§7.2): the probing/ground-truth campaign varies
# memory over {4, 8, 16, 32} GB and cores over {4, 8, 16}.
PAPER_CORE_GRID: Tuple[int, ...] = (4, 8, 16)
PAPER_MEMORY_GRID_GB: Tuple[float, ...] = (4.0, 8.0, 16.0, 32.0)
PAPER_BATCH_GRID: Tuple[int, ...] = (32, 64, 512, 1024)


def paper_system_grid() -> Tuple[SystemParams, ...]:
    """The 12-point (cores x memory) grid probed in the paper (§7.2)."""
    return tuple(
        SystemParams(cores=c, memory_gb=m)
        for c in PAPER_CORE_GRID
        for m in PAPER_MEMORY_GRID_GB
    )


@_cache_repr
@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one (model, dataset) workload.

    The cost/accuracy coefficients parameterise the analytic models in
    :mod:`repro.workloads.perfmodel` and :mod:`repro.workloads.accuracy`;
    they are calibrated so that the magnitudes roughly match the paper's
    Table 3 workloads (epoch durations of minutes for Type-I/II, seconds
    for Type-III).
    """

    name: str
    model: str
    dataset: str
    workload_type: str  # "I", "II" or "III"
    datasize_mb: float
    train_files: int
    test_files: int
    # --- cost-model coefficients -------------------------------------
    #: seconds of single-core compute per sample at reference settings
    compute_per_sample: float = 2.0e-3
    #: seconds of synchronisation cost per extra core per weight update
    sync_per_core: float = 1.2e-3
    #: parallel-efficiency exponent: speedup(cores) ~ cores**alpha
    parallel_alpha: float = 0.85
    #: resident working set independent of batch (GB)
    mem_base_gb: float = 1.5
    #: extra working set per sample in the batch (GB)
    mem_per_sample_gb: float = 2.0e-3
    #: slowdown slope when memory is short of the working set
    mem_pressure_slope: float = 1.5
    #: fixed per-epoch overhead (data loading, checkpointing) seconds
    epoch_overhead_s: float = 2.0
    #: is the workload an NLP model with an embedding layer?
    uses_embedding: bool = False
    # --- accuracy-model coefficients ----------------------------------
    #: asymptotic accuracy under ideal hyperparameters, in [0, 1]
    base_accuracy: float = 0.93
    #: convergence-rate constant (per epoch)
    convergence_rate: float = 0.35
    #: log10 of the best learning rate
    log_lr_opt: float = -2.0
    #: width (in log10 lr) of the learning-rate sweet spot
    log_lr_sigma: float = 0.8
    #: accuracy penalty factor per doubling of batch over 32
    batch_penalty: float = 0.035
    #: best dropout value
    dropout_opt: float = 0.25
    #: curvature of the dropout penalty
    dropout_curvature: float = 0.55
    #: best embedding dimension (NLP only)
    embedding_opt: int = 200
    #: trial-to-trial accuracy noise (std, absolute accuracy)
    accuracy_noise: float = 0.004
    #: epoch-to-epoch runtime noise (std, relative)
    runtime_noise: float = 0.02

    def __post_init__(self):
        if self.workload_type not in ("I", "II", "III"):
            raise ValueError("workload_type must be 'I', 'II' or 'III'")
        if not 0 < self.base_accuracy <= 1:
            raise ValueError("base_accuracy must be in (0, 1]")
        if self.train_files < 1:
            raise ValueError("train_files must be >= 1")

    @property
    def key(self) -> str:
        return self.name

    def seed(self, *parts) -> int:
        return stable_seed(self.name, *parts)

    def rng(self, *parts) -> np.random.Generator:
        return rng_for(self.name, *parts)


@_cache_repr
@dataclass(frozen=True)
class TrialConfig:
    """Everything needed to run one training trial."""

    workload: WorkloadSpec
    hyper: HyperParams = field(default_factory=HyperParams)
    system: SystemParams = field(default_factory=SystemParams)

    def replace(self, **changes) -> "TrialConfig":
        return replace(self, **changes)
