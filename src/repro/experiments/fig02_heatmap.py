"""Figure 2: perf-event heatmap of CNN/News20 across epochs.

Paper setup: the 58 hardware events, averaged per epoch, during the
initiation phase plus 5 training epochs of a CNN model on News20 with
16 cores and 32 GB. The claim illustrated: event occurrences repeat
across epochs with (almost) the same magnitude, which is what makes
one-epoch profiling representative.
"""

from __future__ import annotations

import numpy as np

from ..counters.events import EVENT_NAMES
from ..counters.profiler import EpochProfiler
from ..workloads.perfmodel import active_cores, epoch_cost
from ..workloads.registry import CNN_NEWS20
from ..workloads.spec import HyperParams, SystemParams, TrialConfig
from .harness import ExperimentResult

#: Fig 2's colour-scale buckets (average events per epoch).
BUCKETS = (
    (1e8, "> 1e8"),
    (1e6, "1e8 - 1e6"),
    (1e4, "1e6 - 1e4"),
    (1e2, "1e4 - 1e2"),
    (0.0, "< 1e2"),
)


def bucket_label(events_per_epoch: float) -> str:
    for floor, label in BUCKETS:
        if events_per_epoch >= floor and floor > 0:
            return label
    return BUCKETS[-1][1]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Profile init + 5 epochs and tabulate per-event averages."""
    epochs = max(2, int(round(5 * min(1.0, scale)))) if scale < 1.0 else 5
    config = TrialConfig(
        CNN_NEWS20,
        HyperParams(batch_size=64, epochs=epochs),
        SystemParams(cores=16, memory_gb=32.0),
    )
    profiler = EpochProfiler()
    phases = ["init"] + [str(e) for e in range(1, epochs + 1)]
    matrix = np.zeros((len(EVENT_NAMES), len(phases)))
    for column, phase in enumerate(phases):
        epoch_index = 0 if phase == "init" else int(phase)
        cost = epoch_cost(config, epoch=epoch_index)
        duration = cost.total_s * (0.5 if phase == "init" else 1.0)
        busy = active_cores(config, cost) * (0.6 if phase == "init" else 1.0)
        profile = profiler.profile_epoch(config, epoch_index, duration, busy)
        matrix[:, column] = profile.events_per_epoch()

    result = ExperimentResult(
        exhibit="Figure 2",
        title="Performance-counter events averaged per epoch (CNN/News20)",
        columns=["event"] + [f"log10@{p}" for p in phases] + ["bucket", "cv"],
        notes=(
            "cv = coefficient of variation across training epochs; the "
            "paper's claim is that it stays small (repetitive behaviour)"
        ),
    )
    for i, event in enumerate(EVENT_NAMES):
        training_cols = matrix[i, 1:]
        cv = float(np.std(training_cols) / max(1e-12, np.mean(training_cols)))
        row = {
            "event": event,
            "bucket": bucket_label(float(np.mean(training_cols))),
            "cv": cv,
        }
        for column, phase in enumerate(phases):
            row[f"log10@{phase}"] = float(np.log10(1.0 + matrix[i, column]))
        result.add_row(**row)
    return result


def max_training_cv(result: ExperimentResult) -> float:
    """Largest epoch-to-epoch variation over all events."""
    return max(row["cv"] for row in result.rows)
