"""Figure 2: perf-event heatmap of CNN/News20 across epochs.

Paper setup: the 58 hardware events, averaged per epoch, during the
initiation phase plus 5 training epochs of a CNN model on News20 with
16 cores and 32 GB. The claim illustrated: event occurrences repeat
across epochs with (almost) the same magnitude, which is what makes
one-epoch profiling representative.

Thin shim over the declared ``fig02`` scenario
(:mod:`repro.scenarios.paper`, which also hosts the measurement code).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from ..scenarios.paper import BUCKETS, bucket_label  # noqa: F401  (re-export)
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig02", scale=scale, seed=seed, workers=workers)


def max_training_cv(result: ExperimentResult) -> float:
    """Largest epoch-to-epoch variation over all events."""
    return max(row["cv"] for row in result.rows)
