"""Golden-trace determinism harness for the committed exhibits.

The committed ``benchmarks/results/*.txt`` files are the golden traces
of the reproduction: every one of them must regenerate byte-for-byte
from the canonical :data:`repro.experiments.EXHIBIT_RUNS` parameters on
any machine, any run. This module is the single implementation of
"render an exhibit the way it is committed" plus the byte-diff against
the committed copy; it backs

* ``scripts/regenerate_exhibits.py`` (the operator entry point),
* the ``golden_exhibits`` test fixture (``tests/conftest.py``), and
* CI's exhibits job (``--check`` over all exhibits).

Any PR that touches random streams reruns this harness once in
``--update`` mode and commits the new traces together with the change
that explains them (see benchmarks/README.md, "Determinism contract &
re-baseline procedure").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from . import EXHIBIT_RUNS

#: benchmarks/results relative to the repository root (three levels up
#: from this file: src/repro/experiments -> repo).
_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
)
RESULTS_DIR = os.path.join(_REPO_ROOT, "benchmarks", "results")


def committed_path(name: str) -> str:
    """Path of one exhibit's committed golden trace."""
    return os.path.join(RESULTS_DIR, f"{name}.txt")


def render_result(result) -> str:
    """Serialize an ExperimentResult exactly as committed on disk.

    The single definition of the trace format (rendered table plus one
    trailing newline) — the benchmark suite's ``record_exhibit``
    fixture and every writer below go through it.
    """
    return result.format_table() + "\n"


def write_trace(name: str, content: str, results_dir: Optional[str] = None) -> str:
    """Write one exhibit's trace bytes verbatim; returns the path."""
    results_dir = results_dir or RESULTS_DIR
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(content)
    return path


def render(name: str) -> str:
    """Regenerate one exhibit at its canonical (scale, seed) -> bytes."""
    return render_result(EXHIBIT_RUNS[name].run())


def resolve_names(names: Optional[Iterable[str]] = None) -> List[str]:
    """Validate/expand a user-supplied exhibit subset (None = all)."""
    if names is None:
        return list(EXHIBIT_RUNS)
    resolved = list(names)
    unknown = [n for n in resolved if n not in EXHIBIT_RUNS]
    if unknown:
        raise KeyError(
            f"unknown exhibits {unknown}; known: {sorted(EXHIBIT_RUNS)}"
        )
    return resolved


@dataclass(frozen=True)
class ExhibitDiff:
    """Outcome of regenerating one exhibit against its committed trace."""

    name: str
    matches: bool
    committed_exists: bool
    regenerated: str

    @property
    def status(self) -> str:
        if not self.committed_exists:
            return "MISSING"
        return "ok" if self.matches else "DIFF"


def check(names: Optional[Iterable[str]] = None) -> Dict[str, ExhibitDiff]:
    """Regenerate exhibits and byte-diff each against the committed file."""
    diffs: Dict[str, ExhibitDiff] = {}
    for name in resolve_names(names):
        regenerated = render(name)
        path = committed_path(name)
        exists = os.path.exists(path)
        committed = None
        if exists:
            with open(path, "r", encoding="utf-8", newline="") as handle:
                committed = handle.read()
        diffs[name] = ExhibitDiff(
            name=name,
            matches=committed == regenerated,
            committed_exists=exists,
            regenerated=regenerated,
        )
    return diffs


def regenerate(
    names: Optional[Iterable[str]] = None, results_dir: Optional[str] = None
) -> Dict[str, str]:
    """Regenerate exhibits onto disk; returns {name: path written}."""
    return {
        name: write_trace(name, render(name), results_dir)
        for name in resolve_names(names)
    }
