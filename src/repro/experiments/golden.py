"""Golden-trace determinism harness for the committed exhibits.

The committed ``benchmarks/results/*.txt`` files are the golden traces
of the reproduction: every one of them must regenerate byte-for-byte
from the canonical :data:`repro.experiments.EXHIBIT_RUNS` parameters on
any machine, any run. This module is the single implementation of
"render an exhibit the way it is committed" plus the byte-diff against
the committed copy; it backs

* ``scripts/regenerate_exhibits.py`` (the operator entry point),
* the ``golden_exhibits`` test fixture (``tests/conftest.py``), and
* CI's exhibits job (``--check`` over all exhibits).

Any PR that touches random streams reruns this harness once in
``--update`` mode and commits the new traces together with the change
that explains them (see benchmarks/README.md, "Determinism contract &
re-baseline procedure").
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from . import EXHIBIT_RUNS

#: benchmarks/results relative to the repository root (three levels up
#: from this file: src/repro/experiments -> repo).
_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
)
RESULTS_DIR = os.path.join(_REPO_ROOT, "benchmarks", "results")


def committed_path(name: str) -> str:
    """Path of one exhibit's committed golden trace."""
    return os.path.join(RESULTS_DIR, f"{name}.txt")


def render_result(result) -> str:
    """Serialize an ExperimentResult exactly as committed on disk.

    The single definition of the trace format (rendered table plus one
    trailing newline) — the benchmark suite's ``record_exhibit``
    fixture and every writer below go through it.
    """
    return result.format_table() + "\n"


def write_trace(name: str, content: str, results_dir: Optional[str] = None) -> str:
    """Write one exhibit's trace bytes verbatim; returns the path."""
    results_dir = results_dir or RESULTS_DIR
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(content)
    return path


def _render_with_stats(
    name: str, workers: Optional[int] = None, cache_dir: Optional[str] = None
):
    """Render one exhibit -> (bytes, CacheStats-or-None).

    With a ``cache_dir`` the run goes through the content-addressed
    outcome cache (:mod:`repro.scenarios.cache`); the determinism
    contract extends to hits — recalled bytes == recomputed bytes."""
    if cache_dir is None:
        return render_result(EXHIBIT_RUNS[name].run(workers=workers)), None
    from ..scenarios.cache import cached_backend  # late: heavy import

    backend = cached_backend(cache_dir=cache_dir, workers=workers)
    result = EXHIBIT_RUNS[name].run(backend=backend)
    return render_result(result), backend.stats


def render(
    name: str,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> str:
    """Regenerate one exhibit at its canonical (scale, seed) -> bytes.

    ``workers > 1`` runs the exhibit's scenario on a process-pool
    backend; the determinism contract guarantees identical bytes for
    any worker count (tests/test_scenarios_parallel.py proves it).
    ``cache_dir`` additionally memoizes chain outcomes on disk — same
    bytes, cold or warm."""
    content, _ = _render_with_stats(name, workers=workers, cache_dir=cache_dir)
    return content


def _resolve_parallelism(
    workers: Optional[int], jobs: Optional[int]
) -> Tuple[Optional[int], Optional[int]]:
    """Guard the two parallelism levels against nesting.

    ``jobs`` fans whole exhibits out over a pool; ``workers``
    parallelises inside one exhibit. Pool workers are daemonic and
    cannot open nested pools, so combining both is an error."""
    if jobs is not None and jobs > 1 and workers is not None and workers > 1:
        raise ValueError(
            "choose one parallelism level: jobs (across exhibits) or "
            "workers (within one exhibit), not both"
        )
    return workers, jobs


def resolve_names(names: Optional[Iterable[str]] = None) -> List[str]:
    """Validate/expand a user-supplied exhibit subset (None = all)."""
    if names is None:
        return list(EXHIBIT_RUNS)
    resolved = list(names)
    unknown = [n for n in resolved if n not in EXHIBIT_RUNS]
    if unknown:
        raise KeyError(
            f"unknown exhibits {unknown}; known: {sorted(EXHIBIT_RUNS)}"
        )
    return resolved


@dataclass(frozen=True)
class ExhibitDiff:
    """Outcome of regenerating one exhibit against its committed trace."""

    name: str
    matches: bool
    committed_exists: bool
    regenerated: str
    #: regeneration time of this exhibit (worker-side when pooled).
    elapsed_s: float = 0.0
    #: outcome-cache counters when the check ran through a cache dir.
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None

    @property
    def status(self) -> str:
        if not self.committed_exists:
            return "MISSING"
        return "ok" if self.matches else "DIFF"


def _check_task(payload) -> ExhibitDiff:
    """Regenerate one exhibit and byte-diff it (picklable pool task)."""
    name, workers, cache_dir = payload
    started = time.perf_counter()
    regenerated, stats = _render_with_stats(
        name, workers=workers, cache_dir=cache_dir
    )
    elapsed = time.perf_counter() - started
    path = committed_path(name)
    exists = os.path.exists(path)
    committed = None
    if exists:
        with open(path, "r", encoding="utf-8", newline="") as handle:
            committed = handle.read()
    return ExhibitDiff(
        name=name,
        matches=committed == regenerated,
        committed_exists=exists,
        regenerated=regenerated,
        elapsed_s=elapsed,
        cache_hits=stats.hits if stats is not None else None,
        cache_misses=stats.misses if stats is not None else None,
    )


def _map_exhibits(task, names: List[str], workers, jobs, cache_dir=None) -> List:
    # Late import: repro.scenarios imports repro.experiments pieces via
    # the shims' harness re-export; keep golden importable standalone.
    from ..scenarios.backends import map_tasks

    return map_tasks(
        task, [(name, workers, cache_dir) for name in names], workers=jobs
    )


def check(
    names: Optional[Iterable[str]] = None,
    workers: Optional[int] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, ExhibitDiff]:
    """Regenerate exhibits and byte-diff each against the committed file.

    ``jobs > 1`` regenerates exhibits concurrently on a process pool
    (one exhibit per task); ``workers > 1`` instead parallelises
    within each exhibit. Results are identical either way, and a
    ``cache_dir`` run reports per-exhibit hit/miss counters on the
    diffs without changing a byte.
    """
    workers, jobs = _resolve_parallelism(workers, jobs)
    resolved = resolve_names(names)
    diffs = _map_exhibits(_check_task, resolved, workers, jobs, cache_dir)
    return {diff.name: diff for diff in diffs}


def _render_task(payload) -> Tuple[str, str, float]:
    name, workers, cache_dir = payload
    started = time.perf_counter()
    content = render(name, workers=workers, cache_dir=cache_dir)
    return name, content, time.perf_counter() - started


def render_many(
    names: Optional[Iterable[str]] = None,
    workers: Optional[int] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[Tuple[str, str, float]]:
    """Render exhibits -> [(name, bytes, render seconds)], in order.

    The public fan-out primitive behind :func:`regenerate` and the
    operator script: ``jobs > 1`` renders exhibits concurrently,
    ``workers > 1`` parallelises within each exhibit (never both —
    pool workers are daemonic). Elapsed times are worker-side.
    """
    workers, jobs = _resolve_parallelism(workers, jobs)
    return _map_exhibits(
        _render_task, resolve_names(names), workers, jobs, cache_dir
    )


def regenerate(
    names: Optional[Iterable[str]] = None,
    results_dir: Optional[str] = None,
    workers: Optional[int] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, str]:
    """Regenerate exhibits onto disk; returns {name: path written}.

    Rendering parallelises like :func:`check`; the writes themselves
    always happen in this process, after every render finished.
    """
    return {
        name: write_trace(name, content, results_dir)
        for name, content, _ in render_many(
            names, workers=workers, jobs=jobs, cache_dir=cache_dir
        )
    }
