"""Experiment harness: one module per table/figure of the paper's §7.

Every module exposes ``run(scale=1.0, seed=0) -> ExperimentResult``;
``scale < 1`` shrinks seeds/repetitions for fast benchmark runs.
"""

from . import (
    fig01_cost,
    fig02_heatmap,
    fig03_impact,
    fig05_contention,
    fig08_clusters,
    fig09_convergence,
    fig10_trialtime,
    fig11_single_tenancy,
    fig12_type3,
    fig13_mt_type12,
    fig14_mt_type3,
    table2,
)
from .harness import ExperimentResult

#: registry of every reproduced exhibit, in paper order.
EXHIBITS = {
    "fig01": fig01_cost,
    "fig02": fig02_heatmap,
    "fig03": fig03_impact,
    "fig05": fig05_contention,
    "table2": table2,
    "fig08": fig08_clusters,
    "fig09": fig09_convergence,
    "fig10": fig10_trialtime,
    "fig11": fig11_single_tenancy,
    "fig12": fig12_type3,
    "fig13": fig13_mt_type12,
    "fig14": fig14_mt_type3,
}

__all__ = ["EXHIBITS", "ExperimentResult"]
