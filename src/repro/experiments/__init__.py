"""Experiment harness: one module per table/figure of the paper's §7.

Every module exposes ``run(scale=1.0, seed=0) -> ExperimentResult``;
``scale < 1`` shrinks seeds/repetitions for fast benchmark runs.
"""

from typing import Optional

from . import (
    fig01_cost,
    fig02_heatmap,
    fig03_impact,
    fig05_contention,
    fig08_clusters,
    fig09_convergence,
    fig10_trialtime,
    fig11_single_tenancy,
    fig12_type3,
    fig13_mt_type12,
    fig14_mt_type3,
    table2,
)
from dataclasses import dataclass

from .harness import ExperimentResult

#: registry of every reproduced exhibit, in paper order.
EXHIBITS = {
    "fig01": fig01_cost,
    "fig02": fig02_heatmap,
    "fig03": fig03_impact,
    "fig05": fig05_contention,
    "table2": table2,
    "fig08": fig08_clusters,
    "fig09": fig09_convergence,
    "fig10": fig10_trialtime,
    "fig11": fig11_single_tenancy,
    "fig12": fig12_type3,
    "fig13": fig13_mt_type12,
    "fig14": fig14_mt_type3,
}


@dataclass(frozen=True)
class ExhibitRun:
    """Canonical (scale, seed) under which an exhibit is committed.

    ``benchmarks/results/*.txt`` are regenerated and byte-diffed at
    exactly these parameters — by the benchmark suite, by
    ``scripts/regenerate_exhibits.py`` and by CI's exhibits job — so
    they live in one place.
    """

    name: str
    scale: float
    seed: int = 0

    @property
    def module(self):
        return EXHIBITS[self.name]

    def run(
        self, workers: Optional[int] = None, backend=None
    ) -> ExperimentResult:
        """Regenerate at the canonical parameters. ``workers > 1``
        executes the underlying scenario on a process pool — the
        rendered bytes are identical for any worker count.

        A name without a paper-exhibit module resolves through the
        scenario registry instead — the hostile-world pack commits its
        goldens through the same manifest as the paper figures. When a
        ``backend`` override is given (e.g. a caching backend), every
        name routes through the registry: the paper-exhibit shims are
        thin wrappers over the same registered scenarios, so the bytes
        match (tests/test_scenarios_parallel.py proves it)."""
        if backend is None and self.name in EXHIBITS:
            return self.module.run(scale=self.scale, seed=self.seed, workers=workers)
        from ..scenarios import run_scenario  # late: scenarios import us

        return run_scenario(
            self.name,
            scale=self.scale,
            seed=self.seed,
            workers=workers,
            backend=backend,
        )


#: canonical regeneration parameters for every committed exhibit.
EXHIBIT_RUNS = {
    run.name: run
    for run in (
        ExhibitRun("fig01", scale=1.0),
        ExhibitRun("fig02", scale=1.0),
        ExhibitRun("fig03", scale=1.0),
        ExhibitRun("fig05", scale=0.5),
        ExhibitRun("table2", scale=1.0),
        ExhibitRun("fig08", scale=1.0),
        ExhibitRun("fig09", scale=1.0),
        ExhibitRun("fig10", scale=1.0),
        ExhibitRun("fig11", scale=0.67),
        ExhibitRun("fig12", scale=0.67),
        ExhibitRun("fig13", scale=0.67),
        ExhibitRun("fig14", scale=0.67),
        # hostile-world pack (PR 6): registry scenarios, no module.
        ExhibitRun("spot-market-lenet", scale=1.0),
        ExhibitRun("churn-and-crashes", scale=1.0),
        ExhibitRun("hostile-storm", scale=1.0),
    )
}

__all__ = ["EXHIBITS", "EXHIBIT_RUNS", "ExhibitRun", "ExperimentResult"]
