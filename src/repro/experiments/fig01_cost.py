"""Figure 1: grid-search tuning time and EC2 cost vs number of params.

Paper setup: LeNet on MNIST, 1–6 tuned parameters with up to 3 values
each, priced on three ML-optimised EC2 instance types. Both curves
grow exponentially — the motivation for everything that follows.
"""

from __future__ import annotations

from ..ec2.pricing import PAPER_INSTANCES, cost_table
from ..workloads.registry import LENET_MNIST
from .harness import ExperimentResult


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig 1's rows (scale/seed unused: analytic exhibit)."""
    max_params = max(1, int(round(6 * min(1.0, scale))) ) if scale < 1.0 else 6
    parameters = list(range(1, max_params + 1))
    result = ExperimentResult(
        exhibit="Figure 1",
        title="Grid-search tuning time and EC2 cost vs tuned parameters",
        columns=["parameters", "trials"]
        + [f"{inst.name}/hours" for inst in PAPER_INSTANCES]
        + [f"{inst.name}/usd" for inst in PAPER_INSTANCES],
        notes=(
            "3 values per parameter, LeNet/MNIST; exponential growth in "
            "both tuning hours and dollars is the claim under test"
        ),
    )
    for row in cost_table(LENET_MNIST, parameters=parameters):
        result.add_row(**row)
    return result


def exponential_growth_ratio(result: ExperimentResult, column: str) -> float:
    """Mean ratio between consecutive rows of a column (≈3 expected)."""
    values = [row[column] for row in result.rows]
    ratios = [b / a for a, b in zip(values, values[1:]) if a > 0]
    if not ratios:
        return 1.0
    return sum(ratios) / len(ratios)
