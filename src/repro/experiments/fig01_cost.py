"""Figure 1: grid-search tuning time and EC2 cost vs number of params.

Paper setup: LeNet on MNIST, 1–6 tuned parameters with up to 3 values
each, priced on three ML-optimised EC2 instance types. Both curves
grow exponentially — the motivation for everything that follows.

Thin shim over the declared ``fig01`` scenario
(:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig01", scale=scale, seed=seed, workers=workers)


def exponential_growth_ratio(result: ExperimentResult, column: str) -> float:
    """Mean ratio between consecutive rows of a column (≈3 expected)."""
    values = [row[column] for row in result.rows]
    ratios = [b / a for a, b in zip(values, values[1:]) if a > 0]
    if not ratios:
        return 1.0
    return sum(ratios) / len(ratios)
