"""Figure 9: accuracy convergence over tuning wall-clock (CNN/News20).

The paper plots, for each of PipeTune / Tune V1 / Tune V2, the best
accuracy reached so far as the tuning job progresses. Expected shape:
PipeTune converges to V1's accuracy level at a visibly faster rate
(paper: ~1.5x vs V1, ~2x vs V2); V2 plateaus lower.
"""

from __future__ import annotations

from typing import Dict, List

from ..tune.runner import HptResult
from ..workloads.registry import CNN_NEWS20, type12_workloads
from .harness import (
    ExperimentResult,
    execute_job,
    make_pipetune_session,
    make_pipetune_spec,
    make_v1_spec,
    make_v2_spec,
)


def _jobs(seed: int) -> Dict[str, HptResult]:
    session = make_pipetune_session(distributed=True, seed=seed)
    session.warm_start(type12_workloads())
    return {
        "pipetune": execute_job(make_pipetune_spec(session, CNN_NEWS20, seed=seed)),
        "tune-v1": execute_job(make_v1_spec(CNN_NEWS20, seed=seed)),
        "tune-v2": execute_job(make_v2_spec(CNN_NEWS20, seed=seed)),
    }


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    results = _jobs(seed)
    result = ExperimentResult(
        exhibit="Figure 9",
        title="Accuracy convergence over tuning wall-clock (CNN/News20)",
        columns=["system", "wall_time_s", "best_accuracy_pct", "trial_accuracy_pct"],
        notes="one timeline row per completed trial",
    )
    for system, hpt in results.items():
        for point in hpt.timeline:
            result.add_row(
                system=system,
                wall_time_s=point.wall_time_s,
                best_accuracy_pct=100.0 * point.best_accuracy,
                trial_accuracy_pct=100.0 * point.trial_accuracy,
            )
    return result


def time_to_accuracy(
    result: ExperimentResult, system: str, accuracy_pct: float
) -> float:
    """Wall-clock until a system's best accuracy crosses a level."""
    for row in sorted(
        (r for r in result.rows if r["system"] == system),
        key=lambda r: r["wall_time_s"],
    ):
        if row["best_accuracy_pct"] >= accuracy_pct:
            return row["wall_time_s"]
    return float("inf")
