"""Figure 9: accuracy convergence over tuning wall-clock (CNN/News20).

The paper plots, for each of PipeTune / Tune V1 / Tune V2, the best
accuracy reached so far as the tuning job progresses. Expected shape:
PipeTune converges to V1's accuracy level at a visibly faster rate
(paper: ~1.5x vs V1, ~2x vs V2); V2 plateaus lower.

Thin shim over the declared ``fig09`` scenario
(:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig09", scale=scale, seed=seed, workers=workers)


def time_to_accuracy(
    result: ExperimentResult, system: str, accuracy_pct: float
) -> float:
    """Wall-clock until a system's best accuracy crosses a level."""
    for row in sorted(
        (r for r in result.rows if r["system"] == system),
        key=lambda r: r["wall_time_s"],
    ):
        if row["best_accuracy_pct"] >= accuracy_pct:
            return row["wall_time_s"]
    return float("inf")
