"""Figure 3: hyper/system parameter impact on accuracy, runtime, energy.

Three panels, all LeNet on MNIST:

* (a) batch-size impact (64/256/1024) on accuracy, training duration
  and energy, relative to batch 32;
* (b) cores impact (2/4/8) on duration, per batch size, relative to
  one core;
* (c) same as (b) for energy.

Each cell is measured by running a full (simulated) training trial on
a dedicated node and comparing against the baseline trial.
"""

from __future__ import annotations

from typing import Tuple

from ..simulation.des import Environment
from ..simulation.cluster import NodeSpec, SimCluster
from ..simulation.power import EnergyMeter
from ..tune.trainer import run_trial
from ..workloads.registry import LENET_MNIST
from ..workloads.spec import HyperParams, SystemParams
from .harness import ExperimentResult

EPOCHS = 10


def _train(
    batch_size: int, cores: int, memory_gb: float = 32.0
) -> Tuple[float, float, float]:
    """(accuracy, duration_s, energy_j) of one full training run.

    Energy is the node-level (PDU-view) trapezoidal integral over the
    run, matching how the paper measures Fig 3c — idle draw included.
    """
    env = Environment()
    cluster = SimCluster(env, [NodeSpec(name="n0", cores=16, memory_gb=64.0)])
    meter = EnergyMeter(env, cluster)
    process = env.process(
        run_trial(
            env,
            cluster,
            trial_id=f"fig3-b{batch_size}-c{cores}",
            workload=LENET_MNIST,
            hyper=HyperParams(batch_size=batch_size, epochs=EPOCHS),
            system=SystemParams(cores=cores, memory_gb=memory_gb),
        )
    )
    env.run()
    result = process.value
    return result.accuracy, result.training_time_s, meter.total_energy_joules()


def _pct(value: float, baseline: float) -> float:
    return 100.0 * (value - baseline) / baseline


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate all three panels as one long table."""
    result = ExperimentResult(
        exhibit="Figure 3",
        title="Batch-size and core-count impact (LeNet/MNIST)",
        columns=[
            "panel",
            "batch_size",
            "cores",
            "accuracy_diff_pct",
            "duration_diff_pct",
            "energy_diff_pct",
        ],
        notes=(
            "(a) baseline batch 32 @4 cores; (b)/(c) baseline 1 core per "
            "batch size. Expected shapes: larger batches -> lower accuracy, "
            "shorter runtime, lower energy; extra cores help batch 1024 "
            "but hurt batch 64"
        ),
    )

    # Panel (a): batch-size impact at the default 4 cores.
    base_acc, base_dur, base_energy = _train(batch_size=32, cores=4)
    for batch in (64, 256, 1024):
        acc, dur, energy = _train(batch_size=batch, cores=4)
        result.add_row(
            panel="a",
            batch_size=batch,
            cores=4,
            accuracy_diff_pct=_pct(acc, base_acc),
            duration_diff_pct=_pct(dur, base_dur),
            energy_diff_pct=_pct(energy, base_energy),
        )

    # Panels (b) and (c): cores impact per batch size vs sequential.
    for batch in (64, 256, 1024):
        _, dur1, energy1 = _train(batch_size=batch, cores=1)
        for cores in (2, 4, 8):
            _, dur, energy = _train(batch_size=batch, cores=cores)
            result.add_row(
                panel="b/c",
                batch_size=batch,
                cores=cores,
                accuracy_diff_pct=0.0,
                duration_diff_pct=_pct(dur, dur1),
                energy_diff_pct=_pct(energy, energy1),
            )
    return result
