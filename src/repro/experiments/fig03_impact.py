"""Figure 3: hyper/system parameter impact on accuracy, runtime, energy.

Three panels, all LeNet on MNIST:

* (a) batch-size impact (64/256/1024) on accuracy, training duration
  and energy, relative to batch 32;
* (b) cores impact (2/4/8) on duration, per batch size, relative to
  one core;
* (c) same as (b) for energy.

Each cell is measured by running a full (simulated) training trial on
a dedicated node and comparing against the baseline trial. Thin shim
over the declared ``fig03`` scenario (:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig03", scale=scale, seed=seed, workers=workers)
