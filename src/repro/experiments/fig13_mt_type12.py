"""Figure 13: multi-tenancy average response time, Type-I/II workloads.

Paper setup (§7.4): HPT jobs arrive with exponential interarrival
times on the shared 4-node cluster; Type-I and Type-II each contribute
50 % of the jobs (round-robin within a type); 20 % of jobs are unseen.
Reported: mean response time per type and overall, for Tune V1,
Tune V2 and PipeTune. Expected: PipeTune up to ~30 % lower.

Thin shim over the declared ``fig13`` scenario
(:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig13", scale=scale, seed=seed, workers=workers)


def response_times(result: ExperimentResult) -> Dict[str, float]:
    return {row["system"]: row["all_s"] for row in result.rows}
