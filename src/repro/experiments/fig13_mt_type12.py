"""Figure 13: multi-tenancy average response time, Type-I/II workloads.

Paper setup (§7.4): HPT jobs arrive with exponential interarrival
times on the shared 4-node cluster; Type-I and Type-II each contribute
50 % of the jobs (round-robin within a type); 20 % of jobs are unseen.
Reported: mean response time per type and overall, for Tune V1,
Tune V2 and PipeTune. Expected: PipeTune up to ~30 % lower.
"""

from __future__ import annotations

from typing import Dict

from ..multitenancy.arrivals import generate_arrivals
from ..multitenancy.scheduler import MultiTenancyResult, run_multi_tenancy
from ..tune.runner import HptJobSpec
from ..workloads.registry import type12_workloads, workloads_of_type
from ..workloads.spec import WorkloadSpec
from .harness import (
    ExperimentResult,
    fresh_cluster,
    make_pipetune_session,
    make_pipetune_spec,
    make_v1_spec,
    make_v2_spec,
)

NUM_JOBS_FULL = 12
MEAN_INTERARRIVAL_S = 1200.0
MAX_CONCURRENT_JOBS = 2


def _trace(system: str, num_jobs: int, seed: int) -> MultiTenancyResult:
    env, cluster = fresh_cluster(distributed=True)
    arrivals = generate_arrivals(
        [workloads_of_type("I"), workloads_of_type("II")],
        num_jobs=num_jobs,
        mean_interarrival_s=MEAN_INTERARRIVAL_S,
        unseen_fraction=0.2,
        seed=seed,
    )
    if system == "pipetune":
        session = make_pipetune_session(distributed=True, seed=seed)
        session.warm_start(type12_workloads())

        def factory(workload: WorkloadSpec, arrival) -> HptJobSpec:
            return make_pipetune_spec(session, workload, seed=seed + arrival.index)

    elif system == "tune-v1":

        def factory(workload: WorkloadSpec, arrival) -> HptJobSpec:
            return make_v1_spec(workload, seed=seed + arrival.index)

    elif system == "tune-v2":

        def factory(workload: WorkloadSpec, arrival) -> HptJobSpec:
            return make_v2_spec(workload, seed=seed + arrival.index)

    else:
        raise ValueError(f"unknown system {system!r}")
    return run_multi_tenancy(
        env, cluster, arrivals, factory, max_concurrent_jobs=MAX_CONCURRENT_JOBS
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    num_jobs = max(4, int(round(NUM_JOBS_FULL * scale)))
    result = ExperimentResult(
        exhibit="Figure 13",
        title="Multi-tenancy mean response time (Type-I/II mix)",
        columns=["system", "type_I_s", "type_II_s", "all_s", "queue_wait_s"],
        notes=(
            f"{num_jobs} jobs, exp. interarrival {MEAN_INTERARRIVAL_S:.0f}s, "
            f"{MAX_CONCURRENT_JOBS} concurrent jobs, 20% unseen"
        ),
    )
    for system in ("tune-v1", "tune-v2", "pipetune"):
        trace = _trace(system, num_jobs, seed)
        result.add_row(
            system=system,
            type_I_s=trace.mean_response_time_s("I"),
            type_II_s=trace.mean_response_time_s("II"),
            all_s=trace.mean_response_time_s(),
            queue_wait_s=trace.mean_queue_wait_s(),
        )
    return result


def response_times(result: ExperimentResult) -> Dict[str, float]:
    return {row["system"]: row["all_s"] for row in result.rows}
