"""Shared experiment plumbing: result tables, baseline builders.

Every exhibit of the paper (each table and figure of §7) has one
module in this package exposing ``run(scale=..., seed=...) ->
ExperimentResult``. ``scale`` trades fidelity for runtime: 1.0 is the
full paper-sized experiment, smaller values shrink trial counts /
repetitions so the benchmark suite stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.pipetune import PipeTuneConfig, PipeTuneSession
from ..hpo.hyperband import HyperBand
from ..hpo.space import joint_space, paper_hyper_space
from ..simulation.cluster import (
    SimCluster,
    paper_distributed_cluster,
    paper_single_node,
)
from ..simulation.des import Environment
from ..tune.objectives import accuracy_objective, accuracy_per_time_objective
from ..tune.runner import DEFAULT_SYSTEM, HptJobSpec, HptResult, run_hpt_job
from ..workloads.spec import WorkloadSpec

#: HyperBand budget used throughout the evaluation (rungs 1/3/9 epochs).
HYPERBAND_MAX_EPOCHS = 9
HYPERBAND_ETA = 3
#: Tune V2 explores a larger space: proportionally more samples (§7.3).
V2_SAMPLE_SCALE = 1.5
#: per-trial job-submission/initialisation overhead every system pays
#: (the "Init" phase visible in the paper's Fig 2).
TRIAL_INIT_S = 20.0
#: extra executor-restart cost Tune V2 pays per resource-reshaped
#: trial (§4: trial resources "manually controlled"); V1 and PipeTune
#: keep warm executors (PipeTune reshapes in place).
V2_TRIAL_SETUP_S = TRIAL_INIT_S + 45.0


@dataclass
class ExperimentResult:
    """Uniform result object: one table of rows per exhibit."""

    exhibit: str  # e.g. "Figure 11"
    title: str
    columns: List[str]
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List:
        return [row.get(name) for row in self.rows]

    def format_table(self, float_fmt: str = "{:.2f}") -> str:
        """Render rows as an aligned plain-text table."""

        def fmt(value) -> str:
            if isinstance(value, float):
                return float_fmt.format(value)
            return str(value)

        header = [self.columns]
        body = [[fmt(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(line[i]) for line in header + body)
            for i in range(len(self.columns))
        ]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(line, widths)).rstrip()
            for line in header + [["-" * w for w in widths]] + body
        ]
        out = [f"== {self.exhibit}: {self.title} ==", *lines]
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n".join(out)


# ---------------------------------------------------------------------------
# Baseline builders (shared across exhibits)
# ---------------------------------------------------------------------------

def make_v1_spec(workload: WorkloadSpec, seed: int = 0, **kwargs) -> HptJobSpec:
    """Tune V1: HyperBand over hyperparameters, accuracy objective."""
    space = paper_hyper_space(nlp=workload.uses_embedding)
    return HptJobSpec(
        workload=workload,
        algorithm_factory=lambda: HyperBand(
            space, max_epochs=HYPERBAND_MAX_EPOCHS, eta=HYPERBAND_ETA, seed=seed
        ),
        objective=accuracy_objective,
        system_policy="v1",
        trial_setup_s=TRIAL_INIT_S,
        name=f"v1-{workload.name}",
        **kwargs,
    )


def make_v2_spec(
    workload: WorkloadSpec,
    seed: int = 0,
    max_memory_gb: float = 32.0,
    **kwargs,
) -> HptJobSpec:
    """Tune V2: system params join the space, ratio objective."""
    space = joint_space(nlp=workload.uses_embedding)
    return HptJobSpec(
        workload=workload,
        algorithm_factory=lambda: HyperBand(
            space,
            max_epochs=HYPERBAND_MAX_EPOCHS,
            eta=HYPERBAND_ETA,
            sample_scale=V2_SAMPLE_SCALE,
            seed=seed,
        ),
        objective=accuracy_per_time_objective,
        system_policy="v2",
        trial_setup_s=V2_TRIAL_SETUP_S,
        name=f"v2-{workload.name}",
        **kwargs,
    )


def make_pipetune_session(
    distributed: bool = True,
    config: Optional[PipeTuneConfig] = None,
    seed: int = 0,
) -> PipeTuneSession:
    """A PipeTune session sized for one of the two paper testbeds."""
    if distributed:
        return PipeTuneSession(
            config=config, max_cores=16, max_memory_gb=32.0, seed=seed
        )
    session = PipeTuneSession(config=config, max_cores=8, max_memory_gb=24.0, seed=seed)
    if config is None:
        session.config.cores_grid = (4, 8)
        session.config.memory_grid_gb = (4.0, 8.0, 16.0)
    return session


def make_pipetune_spec(
    session: PipeTuneSession, workload: WorkloadSpec, seed: int = 0, **kwargs
) -> HptJobSpec:
    space = paper_hyper_space(nlp=workload.uses_embedding)
    kwargs.setdefault("trial_setup_s", TRIAL_INIT_S)
    return session.job_spec(
        workload,
        algorithm_factory=lambda: HyperBand(
            space, max_epochs=HYPERBAND_MAX_EPOCHS, eta=HYPERBAND_ETA, seed=seed
        ),
        **kwargs,
    )


def fresh_cluster(distributed: bool = True):
    """A new environment + cluster pair for one isolated run."""
    env = Environment()
    cluster = paper_distributed_cluster(env) if distributed else paper_single_node(env)
    return env, cluster


def execute_job(spec: HptJobSpec, distributed: bool = True) -> HptResult:
    """Run one HPT job to completion on a dedicated cluster."""
    env, cluster = fresh_cluster(distributed)
    process = run_hpt_job(env, cluster, spec)
    env.run()
    return process.value


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def seeds_for(scale: float, full: int, minimum: int = 1) -> List[int]:
    """Seed list shrunk by the experiment's scale factor."""
    count = max(minimum, int(round(full * scale)))
    return list(range(count))
