"""Shared experiment plumbing — now a shim over :mod:`repro.scenarios`.

The baseline builders, cluster factories and the result table that
historically lived here are the canonical machinery of the scenario
API (``repro.scenarios.jobs`` / ``repro.scenarios.result``); this
module re-exports them unchanged so downstream imports keep working.
New code should import from :mod:`repro.scenarios` directly.
"""

from __future__ import annotations

from ..scenarios.jobs import (
    HYPERBAND_ETA,
    HYPERBAND_MAX_EPOCHS,
    TRIAL_INIT_S,
    V2_SAMPLE_SCALE,
    V2_TRIAL_SETUP_S,
    execute_job,
    fresh_cluster,
    make_pipetune_session,
    make_pipetune_spec,
    make_v1_spec,
    make_v2_spec,
    mean,
    seeds_for,
)
from ..scenarios.result import ExperimentResult

__all__ = [
    "ExperimentResult",
    "HYPERBAND_ETA",
    "HYPERBAND_MAX_EPOCHS",
    "TRIAL_INIT_S",
    "V2_SAMPLE_SCALE",
    "V2_TRIAL_SETUP_S",
    "execute_job",
    "fresh_cluster",
    "make_pipetune_session",
    "make_pipetune_spec",
    "make_v1_spec",
    "make_v2_spec",
    "mean",
    "seeds_for",
]
