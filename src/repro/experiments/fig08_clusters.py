"""Figure 8: k-means clusters group workloads by model and dataset.

Paper setup (§5.4): k-means with k=2 trained on the low-level profile
vectors of the Type-I/II workloads; the figure shows that jobs
sharing a model (Type-I: LeNet on two datasets) and jobs sharing a
dataset (Type-II: two models on News20) land in distinct clusters,
supporting the workload-similarity assumption of Fig 4.

Thin shim over the declared ``fig08`` scenario
(:mod:`repro.scenarios.paper`, which also hosts the profiling
campaign).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from ..scenarios.paper import profile_campaign  # noqa: F401  (re-export)
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig08", scale=scale, seed=seed, workers=workers)


def cluster_purity(result: ExperimentResult) -> float:
    """Fraction of points whose cluster matches their majority type."""
    from collections import Counter, defaultdict

    by_cluster = defaultdict(list)
    for row in result.rows:
        by_cluster[row["cluster"]].append(row["type"])
    agreeing = sum(
        Counter(types).most_common(1)[0][1] for types in by_cluster.values()
    )
    return agreeing / len(result.rows)
