"""Figure 8: k-means clusters group workloads by model and dataset.

Paper setup (§5.4): k-means with k=2 trained on the low-level profile
vectors of the Type-I/II workloads; the figure shows that jobs
sharing a model (Type-I: LeNet on two datasets) and jobs sharing a
dataset (Type-II: two models on News20) land in distinct clusters,
supporting the workload-similarity assumption of Fig 4.
"""

from __future__ import annotations

import numpy as np

from ..core.clustering import KMeans
from ..counters.profiler import EpochProfiler
from ..workloads.perfmodel import active_cores, epoch_cost
from ..workloads.registry import type12_workloads
from ..workloads.spec import (
    PAPER_BATCH_GRID,
    HyperParams,
    SystemParams,
    TrialConfig,
)
from .harness import ExperimentResult


def profile_campaign(scale: float = 1.0):
    """Feature vectors + metadata from the §7.2 profiling campaign.

    Each workload is profiled under the paper's batch grid (one epoch
    per point, default system configuration, two repetitions).
    """
    batches = PAPER_BATCH_GRID if scale >= 1.0 else PAPER_BATCH_GRID[:2]
    profiler = EpochProfiler()
    system = SystemParams(cores=8, memory_gb=32.0)
    features, meta = [], []
    for workload in type12_workloads():
        for batch in batches:
            config = TrialConfig(workload, HyperParams(batch_size=batch), system)
            profiles = []
            durations = []
            for rep in range(2):
                cost = epoch_cost(config, epoch=rep)
                durations.append(cost.total_s)
                profiles.append(
                    profiler.profile_epoch(
                        config, rep, cost.total_s, active_cores(config, cost)
                    )
                )
            features.append(np.mean([p.feature_vector() for p in profiles], axis=0))
            meta.append(
                {
                    "workload": workload.name,
                    "model": workload.model,
                    "dataset": workload.dataset,
                    "type": workload.workload_type,
                    "batch_size": batch,
                    "duration_s": float(np.mean(durations)),
                }
            )
    return np.array(features), meta


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    features, meta = profile_campaign(scale)
    model = KMeans(k=2, seed=seed).fit(features)
    result = ExperimentResult(
        exhibit="Figure 8",
        title="k-means (k=2) clusters over profiling-campaign features",
        columns=[
            "workload",
            "model",
            "dataset",
            "type",
            "batch_size",
            "duration_s",
            "cluster",
        ],
        notes=(
            "expected: Type-I (lenet/*) and Type-II (*/news20) separate "
            "into the two clusters"
        ),
    )
    for row, label in zip(meta, model.labels):
        result.add_row(cluster=int(label), **row)
    return result


def cluster_purity(result: ExperimentResult) -> float:
    """Fraction of points whose cluster matches their majority type."""
    from collections import Counter, defaultdict

    by_cluster = defaultdict(list)
    for row in result.rows:
        by_cluster[row["cluster"]].append(row["type"])
    agreeing = sum(
        Counter(types).most_common(1)[0][1] for types in by_cluster.values()
    )
    return agreeing / len(result.rows)
