"""Figure 14: multi-tenancy average response time, Type-III workloads.

Same protocol as Figure 13 but on the single-node testbed with the
Rodinia workloads, reported per workload and overall. The paper finds
the gains *larger* here (up to ~65 % response-time reduction): short
jobs make queueing delays dominate, so every service-time second
PipeTune saves compounds across the queue.

Thin shim over the declared ``fig14`` scenario
(:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig14", scale=scale, seed=seed, workers=workers)
