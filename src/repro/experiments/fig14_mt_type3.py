"""Figure 14: multi-tenancy average response time, Type-III workloads.

Same protocol as Figure 13 but on the single-node testbed with the
Rodinia workloads, reported per workload and overall. The paper finds
the gains *larger* here (up to ~65 % response-time reduction): short
jobs make queueing delays dominate, so every service-time second
PipeTune saves compounds across the queue.
"""

from __future__ import annotations

from ..multitenancy.arrivals import generate_arrivals
from ..multitenancy.scheduler import MultiTenancyResult, run_multi_tenancy
from ..tune.runner import HptJobSpec
from ..workloads.registry import workloads_of_type
from ..workloads.spec import WorkloadSpec
from .harness import (
    ExperimentResult,
    fresh_cluster,
    make_pipetune_session,
    make_pipetune_spec,
    make_v1_spec,
    make_v2_spec,
)

NUM_JOBS_FULL = 12
MEAN_INTERARRIVAL_S = 400.0
MAX_CONCURRENT_JOBS = 1  # one job at a time on the single node


def _trace(system: str, num_jobs: int, seed: int) -> MultiTenancyResult:
    env, cluster = fresh_cluster(distributed=False)
    arrivals = generate_arrivals(
        [workloads_of_type("III")],
        num_jobs=num_jobs,
        mean_interarrival_s=MEAN_INTERARRIVAL_S,
        unseen_fraction=0.2,
        seed=seed,
    )
    if system == "pipetune":
        session = make_pipetune_session(distributed=False, seed=seed)
        session.warm_start(workloads_of_type("III"))

        def factory(workload: WorkloadSpec, arrival) -> HptJobSpec:
            return make_pipetune_spec(
                session, workload, seed=seed + arrival.index, max_concurrent=2
            )

    elif system == "tune-v1":

        def factory(workload: WorkloadSpec, arrival) -> HptJobSpec:
            return make_v1_spec(workload, seed=seed + arrival.index, max_concurrent=2)

    elif system == "tune-v2":

        def factory(workload: WorkloadSpec, arrival) -> HptJobSpec:
            return make_v2_spec(workload, seed=seed + arrival.index, max_concurrent=2)

    else:
        raise ValueError(f"unknown system {system!r}")
    return run_multi_tenancy(
        env, cluster, arrivals, factory, max_concurrent_jobs=MAX_CONCURRENT_JOBS
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    num_jobs = max(4, int(round(NUM_JOBS_FULL * scale)))
    result = ExperimentResult(
        exhibit="Figure 14",
        title="Multi-tenancy mean response time (Type-III, single node)",
        columns=["system", "jacobi_s", "spkmeans_s", "bfs_s", "all_s"],
        notes=(
            f"{num_jobs} jobs, exp. interarrival {MEAN_INTERARRIVAL_S:.0f}s, "
            "FIFO one job at a time, 20% unseen"
        ),
    )
    for system in ("tune-v1", "tune-v2", "pipetune"):
        trace = _trace(system, num_jobs, seed)

        def by_workload(prefix: str) -> float:
            records = [
                r
                for r in trace.records
                if r.arrival.workload.name.startswith(prefix)
            ]
            if not records:
                return 0.0
            return sum(r.response_time_s for r in records) / len(records)

        result.add_row(
            system=system,
            jacobi_s=by_workload("jacobi"),
            spkmeans_s=by_workload("spkmeans"),
            bfs_s=by_workload("bfs"),
            all_s=trace.mean_response_time_s(),
        )
    return result
