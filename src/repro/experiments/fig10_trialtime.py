"""Figure 10: training-trial time convergence over tuning wall-clock.

Companion to Figure 9 (same CNN/News20 jobs): per completed trial, the
(from-scratch-normalised) training time, over the tuning wall-clock.
Expected shape: PipeTune's trials are consistently shorter than both
baselines throughout the tuning process; Tune V1's trials are the
longest because it never optimises for time.

Thin shim over the declared ``fig10`` scenario
(:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult, mean


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig10", scale=scale, seed=seed, workers=workers)


def mean_trial_time(result: ExperimentResult, system: str) -> float:
    values = [
        r["trial_time_s"] for r in result.rows if r["system"] == system
    ]
    return mean(values)
