"""Figure 10: training-trial time convergence over tuning wall-clock.

Companion to Figure 9 (same CNN/News20 jobs): per completed trial, the
(from-scratch-normalised) training time, over the tuning wall-clock.
Expected shape: PipeTune's trials are consistently shorter than both
baselines throughout the tuning process; Tune V1's trials are the
longest because it never optimises for time.
"""

from __future__ import annotations

from .fig09_convergence import _jobs
from .harness import ExperimentResult, mean


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    results = _jobs(seed)
    result = ExperimentResult(
        exhibit="Figure 10",
        title="Training-trial time over tuning wall-clock (CNN/News20)",
        columns=["system", "wall_time_s", "trial_time_s"],
        notes="one row per completed trial; "
        "trial_time normalised to a full training run",
    )
    for system, hpt in results.items():
        for point in hpt.timeline:
            result.add_row(
                system=system,
                wall_time_s=point.wall_time_s,
                trial_time_s=point.trial_training_time_s,
            )
    return result


def mean_trial_time(result: ExperimentResult, system: str) -> float:
    values = [
        r["trial_time_s"] for r in result.rows if r["system"] == system
    ]
    return mean(values)
