"""Table 2: accuracy / training / tuning time per approach (LeNet-MNIST).

Paper values for reference:

=========  ============  =================  ===============
Approach   Accuracy [%]  Training time [s]  Tuning time [s]
=========  ============  =================  ===============
Arbitrary  84.47         445                —
Tune V1    91.54         272                4 575
Tune V2    81.76         187                4 817
PipeTune   92.70         188                3 415
=========  ============  =================  ===============

Expected shape: arbitrary worst on both axes; PipeTune accuracy ≈ V1
with lower tuning time; PipeTune training time ≈ V2 with better
accuracy.
"""

from __future__ import annotations

from ..simulation.des import Environment
from ..simulation.cluster import paper_distributed_cluster
from ..tune.runner import DEFAULT_SYSTEM
from ..tune.trainer import run_trial
from ..workloads.registry import LENET_MNIST, type12_workloads
from ..workloads.spec import HyperParams
from .harness import (
    ExperimentResult,
    execute_job,
    make_pipetune_session,
    make_pipetune_spec,
    make_v1_spec,
    make_v2_spec,
    mean,
    seeds_for,
)

#: a plausible "just pick something" configuration: small-ish batch
#: (slow epochs), overly hot learning rate, heavy dropout, and more
#: epochs than needed — worse than tuned on both accuracy and time.
ARBITRARY_HYPER = HyperParams(
    batch_size=64, dropout=0.45, learning_rate=0.03, epochs=18
)


def _arbitrary_run(seed: int):
    env = Environment()
    cluster = paper_distributed_cluster(env)
    process = env.process(
        run_trial(
            env,
            cluster,
            trial_id=f"arbitrary-{seed}",
            workload=LENET_MNIST,
            hyper=ARBITRARY_HYPER,
            system=DEFAULT_SYSTEM,
        )
    )
    env.run()
    return process.value


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    seeds = [seed + s for s in seeds_for(scale, 3)]
    result = ExperimentResult(
        exhibit="Table 2",
        title="Accuracy, training and tuning time per approach (LeNet/MNIST)",
        columns=["approach", "accuracy_pct", "training_time_s", "tuning_time_s"],
        notes=f"mean over {len(seeds)} seeds",
    )

    arbitrary = [_arbitrary_run(s) for s in seeds]
    result.add_row(
        approach="Arbitrary",
        accuracy_pct=100.0 * mean(r.accuracy for r in arbitrary),
        training_time_s=mean(r.training_time_s for r in arbitrary),
        tuning_time_s=0.0,
    )

    v1 = [execute_job(make_v1_spec(LENET_MNIST, seed=s)) for s in seeds]
    result.add_row(
        approach="Tune V1",
        accuracy_pct=100.0 * mean(r.best_accuracy for r in v1),
        training_time_s=mean(r.best_training_time_s for r in v1),
        tuning_time_s=mean(r.tuning_time_s for r in v1),
    )

    v2 = [execute_job(make_v2_spec(LENET_MNIST, seed=s)) for s in seeds]
    result.add_row(
        approach="Tune V2",
        accuracy_pct=100.0 * mean(r.best_accuracy for r in v2),
        training_time_s=mean(r.best_training_time_s for r in v2),
        tuning_time_s=mean(r.tuning_time_s for r in v2),
    )

    session = make_pipetune_session(distributed=True, seed=seed)
    session.warm_start(type12_workloads())
    pipetune = [
        execute_job(make_pipetune_spec(session, LENET_MNIST, seed=s)) for s in seeds
    ]
    result.add_row(
        approach="PipeTune",
        accuracy_pct=100.0 * mean(r.best_accuracy for r in pipetune),
        training_time_s=mean(r.best_training_time_s for r in pipetune),
        tuning_time_s=mean(r.tuning_time_s for r in pipetune),
    )
    return result
