"""Table 2: accuracy / training / tuning time per approach (LeNet-MNIST).

Paper values for reference:

=========  ============  =================  ===============
Approach   Accuracy [%]  Training time [s]  Tuning time [s]
=========  ============  =================  ===============
Arbitrary  84.47         445                —
Tune V1    91.54         272                4 575
Tune V2    81.76         187                4 817
PipeTune   92.70         188                3 415
=========  ============  =================  ===============

Expected shape: arbitrary worst on both axes; PipeTune accuracy ≈ V1
with lower tuning time; PipeTune training time ≈ V2 with better
accuracy.

Thin shim over the declared ``table2`` scenario: the arbitrary
configuration is a ``fixed`` policy, the three tuned approaches are
the v1/v2/pipetune policies (:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("table2", scale=scale, seed=seed, workers=workers)
