"""Figure 5: Tune V2 performance under varying system conditions.

Paper setup (§4): a Tune V2 tuning job is pinned to {1,2,4,8} cores
together with {1,2,3} background jobs sharing the same logical cores
("2 cores and 3 jobs" = the tuning job + 2 background jobs on 2
cores). Reported: error and training-time improvement relative to a
single Tune V1 job on the default setup.

Expected shape: only a few (cores, jobs) combinations improve on the
baseline; heavy sharing hurts both error and runtime.

Thin shim over the declared ``fig05`` scenario: the pinned variants
are per-policy search-space overrides plus contention levels
(:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult

CORE_OPTIONS = (1, 2, 4, 8)
JOB_OPTIONS = (2, 3, 4)  # total co-located jobs incl. the tuning job


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig05", scale=scale, seed=seed, workers=workers)
