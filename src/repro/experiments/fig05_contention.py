"""Figure 5: Tune V2 performance under varying system conditions.

Paper setup (§4): a Tune V2 tuning job is pinned to {1,2,4,8} cores
together with {1,2,3} background jobs sharing the same logical cores
("2 cores and 3 jobs" = the tuning job + 2 background jobs on 2
cores). Reported: error and training-time improvement relative to a
single Tune V1 job on the default setup.

Expected shape: only a few (cores, jobs) combinations improve on the
baseline; heavy sharing hurts both error and runtime.
"""

from __future__ import annotations

from ..hpo.hyperband import HyperBand
from ..hpo.space import Choice, SearchSpace, joint_space
from ..tune.objectives import accuracy_per_time_objective
from ..tune.runner import HptJobSpec
from ..workloads.registry import LENET_MNIST
from .harness import (
    HYPERBAND_ETA,
    HYPERBAND_MAX_EPOCHS,
    V2_TRIAL_SETUP_S,
    ExperimentResult,
    execute_job,
    make_v1_spec,
    mean,
    seeds_for,
)

CORE_OPTIONS = (1, 2, 4, 8)
JOB_OPTIONS = (2, 3, 4)  # total co-located jobs incl. the tuning job


def _pinned_v2_spec(cores: int, total_jobs: int, seed: int) -> HptJobSpec:
    """A Tune V2 job whose trials are pinned to ``cores`` shared by
    ``total_jobs`` co-located jobs."""
    base = joint_space(nlp=False)
    domains = dict(base.domains)
    domains["cores"] = Choice([cores])  # pinned
    return HptJobSpec(
        workload=LENET_MNIST,
        algorithm_factory=lambda: HyperBand(
            SearchSpace(domains),
            max_epochs=HYPERBAND_MAX_EPOCHS,
            eta=HYPERBAND_ETA,
            seed=seed,
        ),
        objective=accuracy_per_time_objective,
        system_policy="v2",
        trial_setup_s=V2_TRIAL_SETUP_S,
        contention=float(total_jobs),
        name=f"v2-pinned-{cores}c-{total_jobs}j",
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    seeds = [seed + s for s in seeds_for(scale, 2)]
    result = ExperimentResult(
        exhibit="Figure 5",
        title="Tune V2 under co-located jobs vs a single Tune V1 job",
        columns=["cores", "jobs", "error_improvement_pct", "runtime_improvement_pct"],
        notes=(
            "improvement relative to one Tune V1 job on the default "
            "system configuration; positive = better than baseline"
        ),
    )
    baselines = [execute_job(make_v1_spec(LENET_MNIST, seed=s)) for s in seeds]
    base_error = mean(1.0 - r.best_accuracy for r in baselines)
    base_time = mean(r.best_training_time_s for r in baselines)

    for cores in CORE_OPTIONS:
        for jobs in JOB_OPTIONS:
            runs = [
                execute_job(_pinned_v2_spec(cores, jobs, seed=s)) for s in seeds
            ]
            error = mean(1.0 - r.best_accuracy for r in runs)
            time = mean(r.best_training_time_s for r in runs)
            result.add_row(
                cores=cores,
                jobs=jobs,
                error_improvement_pct=100.0 * (base_error - error) / base_error,
                runtime_improvement_pct=100.0 * (base_time - time) / base_time,
            )
    return result
