"""Figure 11: single-tenancy comparison on Type-I/II workloads.

Four panels — model accuracy, training duration, tuning duration,
tuning energy — for lenet/mnist, lenet/fashion, cnn/news20 and
lstm/news20 under Tune V1, Tune V2 and PipeTune, each job on a
dedicated 4-node cluster.

Expected shapes (§7.3): PipeTune accuracy on par with V1 (V2 up to
43 % lower); PipeTune tuning time ≥ 18 % below V1, V2 up to 18 % above
V1; PipeTune training time comparable to V2 (up to 1.7× faster than
the baseline); PipeTune tuning energy up to 29 % below V1, V2 up to
22 % above.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..tune.runner import HptResult
from ..workloads.registry import type12_workloads
from .harness import (
    ExperimentResult,
    execute_job,
    make_pipetune_session,
    make_pipetune_spec,
    make_v1_spec,
    make_v2_spec,
    mean,
    seeds_for,
)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    seeds = [seed + s for s in seeds_for(scale, 3)]
    workloads = type12_workloads()
    result = ExperimentResult(
        exhibit="Figure 11",
        title="Single-tenancy: accuracy / training / tuning / energy (Type-I/II)",
        columns=[
            "workload",
            "system",
            "accuracy_pct",
            "training_time_s",
            "tuning_time_s",
            "tuning_energy_kj",
        ],
        notes=f"mean over {len(seeds)} seeds; dedicated 4-node cluster per job",
    )

    session = make_pipetune_session(distributed=True, seed=seed)
    session.warm_start(workloads)

    def spec_builders(workload):
        return {
            "tune-v1": lambda s: make_v1_spec(workload, seed=s),
            "tune-v2": lambda s: make_v2_spec(workload, seed=s),
            "pipetune": lambda s: make_pipetune_spec(session, workload, seed=s),
        }

    for workload in workloads:
        for system, build in spec_builders(workload).items():
            runs: List[HptResult] = [execute_job(build(s)) for s in seeds]
            result.add_row(
                workload=workload.name,
                system=system,
                accuracy_pct=100.0 * mean(r.best_accuracy for r in runs),
                training_time_s=mean(r.best_training_time_s for r in runs),
                tuning_time_s=mean(r.tuning_time_s for r in runs),
                tuning_energy_kj=mean(r.tuning_energy_j for r in runs) / 1000.0,
            )
    return result


def metric_by_system(
    result: ExperimentResult, workload: str, metric: str
) -> Dict[str, float]:
    """{system: value} for one workload and metric column."""
    return {
        row["system"]: row[metric]
        for row in result.rows
        if row["workload"] == workload
    }
