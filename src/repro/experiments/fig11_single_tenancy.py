"""Figure 11: single-tenancy comparison on Type-I/II workloads.

Four panels — model accuracy, training duration, tuning duration,
tuning energy — for lenet/mnist, lenet/fashion, cnn/news20 and
lstm/news20 under Tune V1, Tune V2 and PipeTune, each job on a
dedicated 4-node cluster.

Expected shapes (§7.3): PipeTune accuracy on par with V1 (V2 up to
43 % lower); PipeTune tuning time ≥ 18 % below V1, V2 up to 18 % above
V1; PipeTune training time comparable to V2 (up to 1.7× faster than
the baseline); PipeTune tuning energy up to 29 % below V1, V2 up to
22 % above.

Thin shim over the declared ``fig11`` scenario
(:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig11", scale=scale, seed=seed, workers=workers)


def metric_by_system(
    result: ExperimentResult, workload: str, metric: str
) -> Dict[str, float]:
    """{system: value} for one workload and metric column."""
    return {
        row["system"]: row[metric]
        for row in result.rows
        if row["workload"] == workload
    }
