"""Figure 12: single-node comparison on Type-III (Rodinia) workloads.

Same four metrics as Figure 11 but on the paper's single E5 node
(8 cores, 24 GB) with jacobi, spkmeans and bfs — short epochs, many of
them, a deliberately harder setting for PipeTune's epoch-granular
pipeline. Expected: the Figure-11 shapes still hold (the paper calls
this the "more challenging scenario").

Thin shim over the declared ``fig12`` scenario
(:mod:`repro.scenarios.paper`).
"""

from __future__ import annotations

from typing import Optional

from ..scenarios import run_scenario
from .harness import ExperimentResult


def run(
    scale: float = 1.0, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    return run_scenario("fig12", scale=scale, seed=seed, workers=workers)
