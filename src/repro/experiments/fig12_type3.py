"""Figure 12: single-node comparison on Type-III (Rodinia) workloads.

Same four metrics as Figure 11 but on the paper's single E5 node
(8 cores, 24 GB) with jacobi, spkmeans and bfs — short epochs, many of
them, a deliberately harder setting for PipeTune's epoch-granular
pipeline. Expected: the Figure-11 shapes still hold (the paper calls
this the "more challenging scenario").
"""

from __future__ import annotations

from typing import List

from ..tune.runner import HptResult
from ..workloads.registry import workloads_of_type
from .harness import (
    ExperimentResult,
    execute_job,
    make_pipetune_session,
    make_pipetune_spec,
    make_v1_spec,
    make_v2_spec,
    mean,
    seeds_for,
)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    seeds = [seed + s for s in seeds_for(scale, 3)]
    workloads = workloads_of_type("III")
    result = ExperimentResult(
        exhibit="Figure 12",
        title="Single-node Type-III: accuracy / training / tuning / energy",
        columns=[
            "workload",
            "system",
            "accuracy_pct",
            "training_time_s",
            "tuning_time_s",
            "tuning_energy_kj",
        ],
        notes=f"mean over {len(seeds)} seeds; single 8-core/24GB node",
    )

    session = make_pipetune_session(distributed=False, seed=seed)
    session.warm_start(workloads)

    builders = {
        "tune-v1": lambda w, s: make_v1_spec(w, seed=s, max_concurrent=2),
        "tune-v2": lambda w, s: make_v2_spec(w, seed=s, max_concurrent=2),
        "pipetune": lambda w, s: make_pipetune_spec(
            session, w, seed=s, max_concurrent=2
        ),
    }
    for workload in workloads:
        for system, build in builders.items():
            runs: List[HptResult] = [
                execute_job(build(workload, s), distributed=False) for s in seeds
            ]
            result.add_row(
                workload=workload.name,
                system=system,
                accuracy_pct=100.0 * mean(r.best_accuracy for r in runs),
                training_time_s=mean(r.best_training_time_s for r in runs),
                tuning_time_s=mean(r.tuning_time_s for r in runs),
                tuning_energy_kj=mean(r.tuning_energy_j for r in runs) / 1000.0,
            )
    return result
