"""HTTP plumbing for the scenario service — stdlib only.

A thin :class:`http.server.ThreadingHTTPServer` front end over
:class:`~repro.service.app.ServiceApp`: each HTTP request is parsed
into a :class:`~repro.service.middleware.Request`, handed to the app
(which runs the middleware chain), and the resulting envelope is
written back as JSON. No framework, no new dependency — the daemon is
``python -m`` / ``repro serve`` runnable anywhere the repo is.

Three entry points:

* :func:`make_server` — a bound, not-yet-serving server (port 0 gives
  an ephemeral port; read ``server.url``);
* :func:`serve` — bind and block (the CLI's ``repro serve``);
* :func:`serve_background` — context manager running the server on a
  daemon thread, yielding ``(server, url)``; tests and the bundled
  example use it for a hermetic in-process service.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from .app import ServiceApp
from .config import ServerConfig
from .envelope import error_envelope
from .middleware import Request


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """One HTTP exchange -> Request -> app -> JSON envelope."""

    protocol_version = "HTTP/1.1"
    server: "ServiceHTTPServer"

    # the access_log middleware is the logging surface; the default
    # per-request stderr lines here would double-log every hit.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _parse_request(self) -> Request:
        split = urlsplit(self.path)
        headers = {key.lower(): value for key, value in self.headers.items()}
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            raw = self.rfile.read(length)
            body = json.loads(raw.decode("utf-8")) if raw.strip() else None
        return Request(
            method=self.command,
            path=split.path,
            headers=headers,
            body=body,
            query=dict(parse_qsl(split.query)),
        )

    def _respond(self) -> None:
        try:
            request = self._parse_request()
        except (ValueError, UnicodeDecodeError) as error:
            self._write(
                400, error_envelope("BadRequest", f"unreadable body: {error}"), {}
            )
            return
        response = self.server.app.handle(request)
        self._write(response.status, response.payload, response.headers)

    def _write(self, status: int, payload, headers) -> None:
        raw = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(raw)

    do_GET = _respond
    do_POST = _respond


class ServiceHTTPServer(ThreadingHTTPServer):
    """The bound server; owns the app so shutdown can close the queue."""

    daemon_threads = True

    def __init__(self, config: ServerConfig, app: Optional[ServiceApp] = None):
        self.config = config
        self.app = app or ServiceApp(config)
        super().__init__((config.host, config.port), _ServiceRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.app.close()
        self.server_close()


def make_server(
    config: Optional[ServerConfig] = None, app: Optional[ServiceApp] = None
) -> ServiceHTTPServer:
    """A bound server that is not serving yet (call ``serve_forever``)."""
    return ServiceHTTPServer(config or ServerConfig(), app=app)


def serve(config: Optional[ServerConfig] = None) -> None:
    """Bind and serve until interrupted — the ``repro serve`` loop."""
    server = make_server(config)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()


@contextlib.contextmanager
def serve_background(config: Optional[ServerConfig] = None):
    """A live server on a daemon thread: ``with serve_background(cfg)
    as (server, url): ...`` — hermetic setup/teardown for tests,
    notebooks and the bundled example."""
    server = make_server(config)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    try:
        yield server, server.url
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5.0)


def parse_address(url: str) -> Tuple[str, int]:
    """(host, port) of a service URL (client-side convenience)."""
    split = urlsplit(url if "//" in url else f"//{url}")
    return split.hostname or "127.0.0.1", split.port or 8765
