"""Declarative server configuration.

A running daemon is fully described by a :class:`ServerConfig` —
bind address, job-queue shape, middleware chain — built from a plain
JSON/dict payload with the same strict ``from_dict`` / ``problems()``
validation discipline as :class:`~repro.scenarios.spec.Scenario`:
unknown keys are rejected loudly and *every* problem is reported at
once, not just the first. ``repro serve --config server.json`` and the
in-process test harness consume the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..scenarios.schema import collect_problems, strict_from_dict
from .middleware import MiddlewareStack

#: the default chain, outermost first: every request gets an id, a log
#: line and a timing header; abusive tenants are shed by the bucket;
#: greedy ones by the in-flight quota.
DEFAULT_MIDDLEWARE: Tuple[Dict, ...] = (
    {"kind": "request_id"},
    {"kind": "access_log"},
    {"kind": "timing"},
    {"kind": "rate_limit"},
    {"kind": "quota"},
)


@dataclass
class QueueConfig:
    """Shape of the async job queue behind the API."""

    #: worker threads draining the queue; each runs one job at a time.
    workers: int = 2
    #: max queued-but-unstarted jobs before submissions answer 503.
    capacity: int = 64

    def problems(self, where: str = "queue") -> List[str]:
        issues = []
        if self.workers < 1:
            issues.append(f"{where}: workers must be >= 1")
        if self.capacity < 1:
            issues.append(f"{where}: capacity must be >= 1")
        return issues

    def as_dict(self) -> Dict:
        return {"workers": self.workers, "capacity": self.capacity}

    @classmethod
    def from_dict(cls, data: Optional[Mapping]) -> "QueueConfig":
        if data is None:
            return cls()
        return strict_from_dict(cls, data, "queue")


@dataclass
class ServerConfig:
    """Everything ``repro serve`` needs to run, as validated data."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (the test harness relies on this).
    port: int = 8765
    queue: QueueConfig = field(default_factory=QueueConfig)
    middleware: MiddlewareStack = field(
        default_factory=lambda: MiddlewareStack.from_config(DEFAULT_MIDDLEWARE)
    )

    def problems(self) -> List[str]:
        issues: List[str] = []
        if not self.host:
            issues.append("server: host must be non-empty")
        if not (0 <= self.port <= 65535):
            issues.append(f"server: port {self.port} outside 0..65535")
        return collect_problems(
            issues, self.queue.problems(), self.middleware.problems()
        )

    def validate(self) -> "ServerConfig":
        issues = self.problems()
        if issues:
            raise ValueError(
                "invalid server config:\n  - " + "\n  - ".join(issues)
            )
        return self

    def as_dict(self) -> Dict:
        return {
            "host": self.host,
            "port": self.port,
            "queue": self.queue.as_dict(),
            "middleware": self.middleware.as_config(),
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping]) -> "ServerConfig":
        if data is None:
            return cls()
        return strict_from_dict(
            cls,
            data,
            "server",
            convert={
                "queue": QueueConfig.from_dict,
                "middleware": MiddlewareStack.from_config,
            },
        )
