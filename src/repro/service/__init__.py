"""Scenario service: the runner promoted to a long-running daemon.

``repro serve`` exposes the declarative scenario API over HTTP/JSON —
submit scenarios and sweeps, poll job status, fetch results rendered
through the golden-trace serializer (byte-identical to ``repro
scenario run --check``) — behind a **composable middleware chain**
declared in the server config: request-id, structured access logging,
timing, per-tenant token-bucket rate limiting and concurrent-job
quotas (:mod:`repro.service.middleware`).

The separation mirrors RAFDA's application-logic-vs-distribution-
policy split that the backend layer already follows: scenario
declarations do not change when the serving topology does. A scenario
submitted over HTTP is exactly a ``Scenario.from_dict`` payload, jobs
execute on the same backends the CLI uses, and a failed chain becomes
a structured job error — never a dead server.

Quick start::

    repro serve --port 8765                 # the daemon
    repro client submit fig09 --wait        # submit + poll + result
    repro client scenarios                  # catalogue over HTTP

or in-process (tests, notebooks)::

    from repro.service import ServerConfig, ServiceApp, serve_background

    with serve_background(ServerConfig(port=0)) as (server, url):
        ...
"""

from .config import DEFAULT_MIDDLEWARE, QueueConfig, ServerConfig
from .envelope import error_envelope, ok_envelope
from .jobs import Job, JobManager, JobNotCancellable, JobQueueFull, JobStates
from .middleware import (
    MIDDLEWARE_KINDS,
    AccessLogMiddleware,
    Middleware,
    MiddlewareStack,
    QuotaMiddleware,
    RateLimitMiddleware,
    Request,
    RequestIdMiddleware,
    Response,
    TimingMiddleware,
)
from .app import ServiceApp
from .client import ServiceClient, ServiceError
from .server import make_server, serve, serve_background

__all__ = [
    "AccessLogMiddleware",
    "DEFAULT_MIDDLEWARE",
    "Job",
    "JobManager",
    "JobNotCancellable",
    "JobQueueFull",
    "JobStates",
    "MIDDLEWARE_KINDS",
    "Middleware",
    "MiddlewareStack",
    "QueueConfig",
    "QuotaMiddleware",
    "RateLimitMiddleware",
    "Request",
    "RequestIdMiddleware",
    "Response",
    "ServerConfig",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "TimingMiddleware",
    "error_envelope",
    "make_server",
    "ok_envelope",
    "serve",
    "serve_background",
]
