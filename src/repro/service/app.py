"""The service application: routes -> envelopes, behind the chain.

:class:`ServiceApp` is transport-agnostic — it maps a parsed
:class:`~repro.service.middleware.Request` to a
:class:`~repro.service.middleware.Response` through the configured
:class:`~repro.service.middleware.MiddlewareStack`; the HTTP plumbing
lives in :mod:`repro.service.server` and tests drive the app directly
in-process. Every response body is the shared envelope
(:mod:`repro.service.envelope`), list/describe payloads are the same
:mod:`repro.scenarios.views` renderings the CLI's ``--json`` emits,
and job results carry the golden-serializer trace.

Routes (all under ``/v1``)::

    GET  /v1/health                      liveness + job counts
    GET  /v1/scenarios                   catalogue (scenario_summary)
    GET  /v1/scenarios/{name}            declaration + resolved plan
    POST /v1/scenarios/{name}/runs       submit a registered scenario
    POST /v1/runs                        submit an inline Scenario dict
    GET  /v1/sweeps                      sweep catalogue
    GET  /v1/sweeps/{name}               full sweep declaration
    POST /v1/sweeps/{name}/runs          submit a registered sweep
    GET  /v1/jobs                        all jobs, submission order
    GET  /v1/jobs/{id}                   one job's status view
    GET  /v1/jobs/{id}/result            result + trace (409 until done)
    POST /v1/jobs/{id}/cancel            cooperative cancellation
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..scenarios.registry import SCENARIO_REGISTRY, get_definition
from ..scenarios.spec import ScenarioError
from ..scenarios.sweep import SWEEP_REGISTRY, get_sweep
from ..scenarios.views import (
    scenario_describe_payload,
    scenario_summary,
    sweep_summary,
)
from .config import ServerConfig
from .envelope import error_envelope, ok_envelope
from .jobs import JobManager, JobNotCancellable, JobQueueFull, JobStates
from .middleware import Request, Response


def _bad_request(message: str, error_type: str = "BadRequest") -> Response:
    return Response(400, error_envelope(error_type, message))


def _not_found(message: str) -> Response:
    return Response(404, error_envelope("NotFound", message))


#: body fields a run submission accepts (plus "scenario" on /v1/runs).
_RUN_FIELDS = ("scale", "seed", "workers", "cache", "cache_dir")


class ServiceApp:
    """Routes requests over one :class:`JobManager`; owns no sockets."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = (config or ServerConfig()).validate()
        self.manager = JobManager(self.config.queue)
        self.stack = self.config.middleware

    def close(self) -> None:
        self.manager.close()

    # -- entry point --------------------------------------------------------
    def handle(self, request: Request) -> Response:
        request.context.setdefault("manager", self.manager)
        request.context.setdefault("config", self.config)
        try:
            return self.stack.handle(request, self._route)
        except Exception as error:  # a broken handler answers, never kills
            return Response(
                500, error_envelope(type(error).__name__, str(error))
            )

    # -- routing ------------------------------------------------------------
    def _route(self, request: Request) -> Response:
        parts = [part for part in request.path.split("/") if part]
        if not parts or parts[0] != "v1":
            return _not_found(f"no route {request.path!r}; the API lives under /v1")
        parts = parts[1:]
        method = request.method

        if parts == ["health"] and method == "GET":
            return self._health()
        if parts == ["scenarios"] and method == "GET":
            return Response(
                200,
                ok_envelope(
                    [
                        scenario_summary(definition)
                        for definition in SCENARIO_REGISTRY.values()
                    ]
                ),
            )
        if len(parts) == 2 and parts[0] == "scenarios" and method == "GET":
            return self._describe_scenario(parts[1], request)
        if (
            len(parts) == 3
            and parts[0] == "scenarios"
            and parts[2] == "runs"
            and method == "POST"
        ):
            return self._submit_scenario(parts[1], request)
        if parts == ["runs"] and method == "POST":
            return self._submit_inline(request)
        if parts == ["sweeps"] and method == "GET":
            return Response(
                200,
                ok_envelope(
                    [sweep_summary(sweep) for sweep in SWEEP_REGISTRY.values()]
                ),
            )
        if len(parts) == 2 and parts[0] == "sweeps" and method == "GET":
            return self._describe_sweep(parts[1])
        if (
            len(parts) == 3
            and parts[0] == "sweeps"
            and parts[2] == "runs"
            and method == "POST"
        ):
            return self._submit_sweep(parts[1], request)
        if parts == ["jobs"] and method == "GET":
            return Response(
                200,
                ok_envelope([job.as_dict() for job in self.manager.jobs()]),
            )
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            return self._job_status(parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            if method == "GET":
                return self._job_result(parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            if method == "POST":
                return self._job_cancel(parts[1])
        return _not_found(f"no route for {method} {request.path!r}")

    # -- handlers -----------------------------------------------------------
    def _health(self) -> Response:
        counts = {state: 0 for state in JobStates.ALL}
        for job in self.manager.jobs():
            counts[job.status] += 1
        return Response(
            200,
            ok_envelope(
                {
                    "status": "ok",
                    "jobs": counts,
                    "queue": self.config.queue.as_dict(),
                    "middleware": [m.kind for m in self.stack.middlewares],
                }
            ),
        )

    def _describe_scenario(self, name: str, request: Request) -> Response:
        try:
            definition = get_definition(name)
        except KeyError as error:
            return _not_found(str(error.args[0]))
        try:
            scale = float(request.query.get("scale", 1.0))
            seed = int(request.query.get("seed", 0))
        except ValueError as error:
            return _bad_request(f"bad query parameter: {error}")
        return Response(
            200,
            ok_envelope(scenario_describe_payload(definition, scale, seed)),
        )

    def _describe_sweep(self, name: str) -> Response:
        try:
            sweep = get_sweep(name)
        except KeyError as error:
            return _not_found(str(error.args[0]))
        payload = sweep_summary(sweep)
        payload["sweep"] = sweep.as_dict()
        return Response(200, ok_envelope(payload))

    def _run_params(self, request: Request, extra: tuple = ()) -> Dict:
        body = request.body or {}
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        allowed = _RUN_FIELDS + extra
        unknown = [key for key in body if key not in allowed]
        if unknown:
            raise ValueError(
                f"unknown run field(s) {unknown}; known: {list(allowed)}"
            )
        cache_dir = body.get("cache_dir")
        if cache_dir is not None and not isinstance(cache_dir, str):
            raise ValueError("cache_dir must be a string path")
        return {
            "scale": float(body.get("scale", 1.0)),
            "seed": int(body.get("seed", 0)),
            "workers": int(body.get("workers", 1)),
            "cache": bool(body.get("cache", False)),
            "cache_dir": cache_dir,
        }

    def _submit(self, submit, **kwargs) -> Response:
        try:
            job = submit(**kwargs)
        except JobQueueFull as error:
            return Response(503, error_envelope("JobQueueFull", str(error)))
        except KeyError as error:
            return _not_found(str(error.args[0]))
        except ScenarioError as error:
            return _bad_request(str(error), error_type="ScenarioError")
        except (TypeError, ValueError) as error:
            return _bad_request(str(error))
        return Response(202, ok_envelope(job.as_dict()))

    def _submit_scenario(self, name: str, request: Request) -> Response:
        try:
            params = self._run_params(request)
        except ValueError as error:
            return _bad_request(str(error))
        return self._submit(
            self.manager.submit_scenario,
            name=name,
            tenant=request.tenant,
            **params,
        )

    def _submit_inline(self, request: Request) -> Response:
        body = request.body or {}
        if not isinstance(body, dict) or "scenario" not in body:
            return _bad_request(
                'inline submission needs a "scenario" object '
                "(a Scenario.from_dict payload)"
            )
        try:
            params = self._run_params(request, extra=("scenario",))
        except ValueError as error:
            return _bad_request(str(error))
        return self._submit(
            self.manager.submit_scenario,
            scenario=body["scenario"],
            tenant=request.tenant,
            **params,
        )

    def _submit_sweep(self, name: str, request: Request) -> Response:
        try:
            params = self._run_params(request)
        except ValueError as error:
            return _bad_request(str(error))
        return self._submit(
            self.manager.submit_sweep,
            name=name,
            tenant=request.tenant,
            **params,
        )

    def _job_status(self, job_id: str) -> Response:
        try:
            job = self.manager.get(job_id)
        except KeyError as error:
            return _not_found(str(error.args[0]))
        return Response(200, ok_envelope(job.as_dict()))

    def _job_result(self, job_id: str) -> Response:
        try:
            job = self.manager.get(job_id)
        except KeyError as error:
            return _not_found(str(error.args[0]))
        if not job.finished:
            return Response(
                409,
                error_envelope(
                    "JobNotFinished",
                    f"job {job_id} is still {job.status}; poll "
                    f"/v1/jobs/{job_id} until it finishes",
                    status=job.status,
                ),
            )
        data = job.as_dict(include_result=True)
        if job.status == JobStates.FAILED:
            # structured job error; data still carries whatever survived.
            return Response(
                200,
                error_envelope(
                    job.error["type"], job.error["message"], data=data
                ),
            )
        return Response(200, ok_envelope(data))

    def _job_cancel(self, job_id: str) -> Response:
        try:
            job = self.manager.cancel(job_id)
        except KeyError as error:
            return _not_found(str(error.args[0]))
        except JobNotCancellable as error:
            return Response(
                409,
                error_envelope(
                    "JobNotCancellable",
                    str(error),
                    data=error.job.as_dict(),
                ),
            )
        return Response(202, ok_envelope(job.as_dict()))


def routes() -> List[str]:
    """The route table (parsed from the module docstring above), for
    docs and the CLI's ``serve`` banner."""
    lines = []
    for line in (__doc__ or "").splitlines():
        line = line.strip()
        if line.startswith(("GET", "POST")):
            lines.append(line)
    return lines
