"""Composable request middleware for the scenario service.

Every request the daemon serves flows through a
:class:`MiddlewareStack`: an ordered chain of :class:`Middleware`
objects, each seeing the request, deciding to pass it on
(``call_next``) or answer it directly (rate limiting answers with
429), and post-processing the response on the way back out. The chain
is *declared* in the server config as data — the same strict
``from_dict`` / ``problems()`` validation discipline as
:class:`~repro.scenarios.spec.Scenario` — so the serving policy
changes without touching a line of application logic, in the spirit of
the context-aware middleware literature the paper sits in.

Built-in kinds (:data:`MIDDLEWARE_KINDS`):

* ``request_id`` — tags every request with a process-unique id,
  echoed as the ``X-Request-Id`` response header;
* ``access_log`` — one structured JSON line per request (request id,
  tenant, method, path, status, elapsed);
* ``timing`` — measures the downstream chain, echoed as
  ``X-Elapsed-Ms``;
* ``rate_limit`` — per-tenant token bucket; an exhausted bucket
  answers ``429`` with a machine-readable envelope and ``Retry-After``;
* ``quota`` — caps *in-flight jobs* (queued + running) per tenant;
  submissions beyond the cap answer ``429`` without touching the
  queue.

Tenancy is declared by the ``X-Tenant`` request header (default
``"anonymous"``) — the per-request context the chain observes and
reacts to.
"""

from __future__ import annotations

import itertools
import json
import sys
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

from ..scenarios.schema import strict_from_dict
from .envelope import error_envelope

DEFAULT_TENANT = "anonymous"


@dataclass
class Request:
    """One parsed HTTP request flowing through the chain."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)  # lower-cased keys
    body: Optional[Dict] = None
    query: Dict[str, str] = field(default_factory=dict)
    #: set by the request_id middleware.
    request_id: Optional[str] = None
    #: server-side context (the job manager, the config) handlers and
    #: middleware may consult; never serialised.
    context: Dict = field(default_factory=dict)

    @property
    def tenant(self) -> str:
        return self.headers.get("x-tenant", DEFAULT_TENANT) or DEFAULT_TENANT

    @property
    def is_submission(self) -> bool:
        """Whether this request creates a job (quota-relevant)."""
        return self.method == "POST" and self.path.endswith("/runs")


@dataclass
class Response:
    """Status + envelope payload + headers, middleware-annotatable."""

    status: int
    payload: Dict
    headers: Dict[str, str] = field(default_factory=dict)


Handler = Callable[[Request], Response]
CallNext = Callable[[Request], Response]


class Middleware:
    """One link of the chain; subclasses are config-declared dataclasses.

    ``handle`` sees the request and the rest of the chain
    (``call_next``); the default is a transparent passthrough.
    Config-facing subclasses carry only their declarative knobs as
    dataclass fields — runtime state (buckets, counters, locks) lives
    in underscore attributes set up in ``__post_init__`` and never
    serialises.
    """

    kind: ClassVar[str] = ""

    def handle(self, request: Request, call_next: CallNext) -> Response:
        return call_next(request)

    def problems(self, where: str = "") -> List[str]:
        return []

    def as_dict(self) -> Dict:
        data = {"kind": self.kind}
        for spec_field in fields(self):
            data[spec_field.name] = getattr(self, spec_field.name)
        return data


@dataclass
class RequestIdMiddleware(Middleware):
    """Tags requests with ``<prefix>-<n>``; echoes ``X-Request-Id``."""

    kind: ClassVar[str] = "request_id"
    prefix: str = "req"

    def __post_init__(self):
        self._counter = itertools.count(1)

    def handle(self, request: Request, call_next: CallNext) -> Response:
        if request.request_id is None:
            request.request_id = f"{self.prefix}-{next(self._counter):06d}"
        response = call_next(request)
        response.headers.setdefault("X-Request-Id", request.request_id)
        return response

    def problems(self, where: str = "") -> List[str]:
        return [f"{where}: prefix must be non-empty"] if not self.prefix else []


@dataclass
class AccessLogMiddleware(Middleware):
    """One structured JSON line per request, written to stderr.

    The line carries the request id (when the chain assigns one
    upstream), tenant, method, path, response status and elapsed
    milliseconds — grep-able, machine-parseable operational telemetry.
    ``stream`` is swappable for tests (not a config field).
    """

    kind: ClassVar[str] = "access_log"

    def __post_init__(self):
        self.stream = sys.stderr

    def handle(self, request: Request, call_next: CallNext) -> Response:
        started = time.perf_counter()
        response = call_next(request)
        record = {
            "request_id": request.request_id,
            "tenant": request.tenant,
            "method": request.method,
            "path": request.path,
            "status": response.status,
            "elapsed_ms": round(1000.0 * (time.perf_counter() - started), 3),
        }
        print(json.dumps(record, sort_keys=True), file=self.stream, flush=True)
        return response


@dataclass
class TimingMiddleware(Middleware):
    """Measures the downstream chain; echoes ``X-Elapsed-Ms``."""

    kind: ClassVar[str] = "timing"
    header: str = "X-Elapsed-Ms"

    def handle(self, request: Request, call_next: CallNext) -> Response:
        started = time.perf_counter()
        response = call_next(request)
        elapsed_ms = 1000.0 * (time.perf_counter() - started)
        response.headers.setdefault(self.header, f"{elapsed_ms:.3f}")
        return response

    def problems(self, where: str = "") -> List[str]:
        return [f"{where}: header must be non-empty"] if not self.header else []


@dataclass
class RateLimitMiddleware(Middleware):
    """Per-tenant token bucket over every request.

    Each tenant holds up to ``capacity`` tokens, refilled continuously
    at ``refill_per_s``; a request spends one. An empty bucket answers
    ``429`` with error type ``RateLimited`` and a ``Retry-After``
    header — the request never reaches the queue. ``clock`` is
    injectable (tests drive it manually).
    """

    kind: ClassVar[str] = "rate_limit"
    capacity: float = 20.0
    refill_per_s: float = 10.0

    def __post_init__(self):
        self.clock = time.monotonic
        self._lock = threading.Lock()
        self._buckets: Dict[str, List[float]] = {}  # tenant -> [tokens, last]

    def handle(self, request: Request, call_next: CallNext) -> Response:
        now = self.clock()
        with self._lock:
            bucket = self._buckets.setdefault(
                request.tenant, [float(self.capacity), now]
            )
            tokens, last = bucket
            tokens = min(
                float(self.capacity), tokens + (now - last) * self.refill_per_s
            )
            if tokens < 1.0:
                bucket[:] = [tokens, now]
                retry_after_s = (
                    (1.0 - tokens) / self.refill_per_s if self.refill_per_s else 60.0
                )
                return Response(
                    status=429,
                    payload=error_envelope(
                        "RateLimited",
                        f"tenant {request.tenant!r} is over its request "
                        f"budget ({self.capacity:g} burst, "
                        f"{self.refill_per_s:g}/s sustained)",
                        retry_after_s=round(retry_after_s, 3),
                    ),
                    headers={"Retry-After": f"{retry_after_s:.3f}"},
                )
            bucket[:] = [tokens - 1.0, now]
        return call_next(request)

    def problems(self, where: str = "") -> List[str]:
        issues = []
        if self.capacity < 1:
            issues.append(f"{where}: capacity must be >= 1")
        if self.refill_per_s < 0:
            issues.append(f"{where}: refill_per_s must be >= 0")
        return issues


@dataclass
class QuotaMiddleware(Middleware):
    """Caps in-flight (queued + running) jobs per tenant.

    Applies only to submission requests; reads the live count from the
    job manager the app placed in ``request.context``. A tenant at its
    cap gets ``429`` with error type ``QuotaExceeded`` and the request
    never reaches the queue — finished/cancelled jobs free the slots.
    """

    kind: ClassVar[str] = "quota"
    max_in_flight: int = 4

    def handle(self, request: Request, call_next: CallNext) -> Response:
        if not request.is_submission:
            return call_next(request)
        manager = request.context.get("manager")
        in_flight = manager.in_flight_for(request.tenant) if manager else 0
        if in_flight >= self.max_in_flight:
            return Response(
                status=429,
                payload=error_envelope(
                    "QuotaExceeded",
                    f"tenant {request.tenant!r} has {in_flight} job(s) in "
                    f"flight (cap {self.max_in_flight}); wait for one to "
                    "finish or cancel it",
                    in_flight=in_flight,
                    max_in_flight=self.max_in_flight,
                ),
            )
        return call_next(request)

    def problems(self, where: str = "") -> List[str]:
        if self.max_in_flight < 1:
            return [f"{where}: max_in_flight must be >= 1"]
        return []


#: declared middleware kinds, in no particular order.
MIDDLEWARE_KINDS = {
    cls.kind: cls
    for cls in (
        RequestIdMiddleware,
        AccessLogMiddleware,
        TimingMiddleware,
        RateLimitMiddleware,
        QuotaMiddleware,
    )
}


class MiddlewareStack:
    """An ordered middleware chain around one terminal handler.

    Declaration order is wrapping order: the first middleware sees the
    request first and the response last — request_id before access_log
    before rate_limit means a 429 still gets an id and a log line.
    """

    def __init__(self, middlewares: Sequence[Middleware] = ()):
        self.middlewares: Tuple[Middleware, ...] = tuple(middlewares)

    def handle(self, request: Request, handler: Handler) -> Response:
        chain = self.middlewares

        def call(index: int, req: Request) -> Response:
            if index == len(chain):
                return handler(req)
            return chain[index].handle(req, lambda r: call(index + 1, r))

        return call(0, request)

    def problems(self) -> List[str]:
        issues: List[str] = []
        for position, middleware in enumerate(self.middlewares):
            where = f"middleware[{position}] ({middleware.kind})"
            issues.extend(middleware.problems(where))
        return issues

    def as_config(self) -> List[Dict]:
        return [middleware.as_dict() for middleware in self.middlewares]

    @classmethod
    def from_config(cls, entries: Sequence[Dict]) -> "MiddlewareStack":
        built: List[Middleware] = []
        for position, entry in enumerate(entries):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            if kind not in MIDDLEWARE_KINDS:
                raise ValueError(
                    f"middleware[{position}]: unknown kind {kind!r}; "
                    f"known: {sorted(MIDDLEWARE_KINDS)}"
                )
            built.append(
                strict_from_dict(
                    MIDDLEWARE_KINDS[kind], entry, f"middleware {kind!r}"
                )
            )
        return cls(built)

    def __repr__(self) -> str:
        kinds = " -> ".join(m.kind for m in self.middlewares) or "empty"
        return f"MiddlewareStack({kinds})"
