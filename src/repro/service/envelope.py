"""The one JSON envelope every structured surface speaks.

Every CLI ``--json`` output and every service HTTP response is::

    {"ok": true,  "data": <payload>, "error": null}
    {"ok": false, "data": <partial or null>,
     "error": {"type": "...", "message": "...", ...}}

so clients branch on ``ok`` and read ``error.type`` machine-readably
instead of scraping stderr. ``data`` may be non-null on failure when a
partial result survived (a job cancelled mid-run still carries the
table of its completed steps).
"""

from __future__ import annotations

from typing import Dict, Optional


def ok_envelope(data) -> Dict:
    return {"ok": True, "data": data, "error": None}


def error_envelope(
    error_type: str, message: str, data=None, **extra
) -> Dict:
    error: Dict = {"type": error_type, "message": message}
    error.update(extra)
    return {"ok": False, "data": data, "error": error}


def is_envelope(payload) -> bool:
    return isinstance(payload, dict) and {"ok", "data", "error"} <= set(payload)


def unwrap(payload: Dict):
    """The ``data`` of an ok envelope; raises on a non-ok one."""
    if not is_envelope(payload):
        raise ValueError(f"not an envelope: {payload!r}")
    if not payload["ok"]:
        error: Optional[Dict] = payload.get("error") or {}
        raise ValueError(
            f"{error.get('type', 'Error')}: {error.get('message', 'failed')}"
        )
    return payload["data"]
