"""Async job queue: submitted scenarios/sweeps -> background execution.

A submission becomes a :class:`Job` on a bounded queue; a small pool of
worker *threads* drains it, each running one job at a time through the
existing execution backends (the heavy lifting stays in
:mod:`repro.scenarios.backends` — serial-with-containment by default,
a process pool when the job asks for ``workers > 1``). The manager
never lets a job kill the daemon:

* a raising *step* is contained as
  :class:`~repro.scenarios.containment.ChainFailure` outcomes and the
  job completes ``done`` with its ``failures`` recorded;
* a raising *job* (bad payload, validation error) completes ``failed``
  with a structured error;
* cancellation is cooperative: the cancel endpoint sets an event the
  chain executor polls between steps (and the pooled backend polls
  between chains), so a cancelled job still collects a partial table
  of the steps it finished. A job ends ``cancelled`` only when the
  cancellation was actually *observed* — a cancel that lands after
  the last step finished leaves the job ``done`` with its full
  result, and cancelling an already-terminal job is a no-op. Sweep
  jobs cannot be cancelled mid-run (``run_sweep`` is one atomic
  call); attempting it raises :class:`JobNotCancellable` instead of
  silently accepting the request.

Job views are race-free: :meth:`Job.as_dict` and
:meth:`Job.elapsed_s` snapshot the mutable fields under the manager's
lock, so a status poll can never observe e.g. ``running`` with a
non-null ``finished_at``.

Results are rendered through the golden serializer
(:func:`repro.experiments.golden.render_result`), so the ``trace`` a
job reports is byte-identical to ``repro scenario run --check``'s
rendering of the same (scenario, scale, seed).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..scenarios.backends import ContainedSerialBackend, ProcessPoolBackend
from ..scenarios.cache import CachingBackend, OutcomeCache, resolve_cache_dir
from ..scenarios.containment import is_failure
from ..scenarios.registry import get_definition
from ..scenarios.runner import ScenarioRunner
from ..scenarios.spec import Scenario
from ..scenarios.sweep import get_sweep, run_sweep
from ..scenarios.views import failure_view, jsonify
from .config import QueueConfig


class JobStates:
    """The job lifecycle: queued -> running -> done|failed|cancelled."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = frozenset((DONE, FAILED, CANCELLED))
    IN_FLIGHT = frozenset((QUEUED, RUNNING))


class JobQueueFull(RuntimeError):
    """The bounded queue rejected a submission (HTTP 503 upstream)."""


class JobNotCancellable(RuntimeError):
    """Cancel was requested for a job that cannot honour it (a sweep
    already running — run_sweep is one atomic call); HTTP 409
    upstream. Structured refusal beats silently ignoring the event."""

    def __init__(self, job: "Job"):
        self.job = job
        super().__init__(
            f"job {job.id} is a {job.kind} already {job.status}; sweeps "
            "cannot be cancelled mid-run"
        )


@dataclass
class Job:
    """One submitted unit of work and everything it produced."""

    id: str
    kind: str  # "scenario" | "sweep"
    name: str
    tenant: str
    scale: float = 1.0
    seed: int = 0
    workers: int = 1
    #: inline Scenario.from_dict payload (ad-hoc submissions).
    scenario: Optional[Dict] = None
    status: str = JobStates.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: ExperimentResult.as_dict(), JSON-safe; partial when cancelled.
    result: Optional[Dict] = None
    #: the golden-serializer rendering of ``result``.
    trace: Optional[str] = None
    #: contained per-step failures (failure_view dicts), if any.
    failures: List[Dict] = field(default_factory=list)
    #: structured error when the job itself failed.
    error: Optional[Dict] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: run through the content-addressed outcome cache?
    cache: bool = False
    cache_dir: Optional[str] = None
    #: chain-cache counters, filled in after a cached run.
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    #: guards every mutable field; the manager swaps in its own lock
    #: at enqueue time so views and lifecycle commits serialise.
    lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    @property
    def finished(self) -> bool:
        return self.status in JobStates.TERMINAL

    def elapsed_s(self) -> Optional[float]:
        with self.lock:
            return self._elapsed_locked()

    def _elapsed_locked(self) -> Optional[float]:
        if self.started_at is None:
            return None
        # repro: allow[DET001] -- wall-clock wait age shown to clients
        end = self.finished_at if self.finished_at is not None else time.time()
        return round(end - self.started_at, 3)

    def as_dict(self, include_result: bool = False) -> Dict:
        """The job's status view; ``include_result`` adds the payload.

        The snapshot is taken under the job's lock — the lifecycle
        fields (``status``/``finished_at``/``failures``/…) can never
        tear against a concurrent status commit.
        """
        with self.lock:
            data = {
                "id": self.id,
                "kind": self.kind,
                "name": self.name,
                "tenant": self.tenant,
                "scale": self.scale,
                "seed": self.seed,
                "workers": self.workers,
                "status": self.status,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "elapsed_s": self._elapsed_locked(),
                "failure_count": len(self.failures),
                "error": self.error,
                "cache": {
                    "enabled": self.cache,
                    "dir": self.cache_dir,
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                },
            }
            if include_result:
                data["result"] = self.result
                data["trace"] = self.trace
                data["failures"] = list(self.failures)
        return data


class JobManager:
    """Bounded queue + worker-thread pool over the execution backends."""

    def __init__(self, config: Optional[QueueConfig] = None):
        self.config = config or QueueConfig()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        # re-entrant: Job.as_dict() takes the same lock the status
        # commit holds, and internal helpers may nest acquisitions.
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-job-worker-{n}", daemon=True
            )
            for n in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ---------------------------------------------------------
    def submit_scenario(
        self,
        name: Optional[str] = None,
        scenario: Optional[Dict] = None,
        scale: float = 1.0,
        seed: int = 0,
        workers: int = 1,
        tenant: str = "anonymous",
        cache: bool = False,
        cache_dir: Optional[str] = None,
    ) -> Job:
        """Enqueue one scenario run — registered by name, or an inline
        ``Scenario.from_dict`` payload. Bad payloads raise here
        (synchronously, so the API can answer 400/404), never inside a
        worker."""
        if (name is None) == (scenario is None):
            raise ValueError("submit exactly one of: scenario name, inline payload")
        if name is not None:
            get_definition(name)  # raises KeyError on unknown names
            job_name = name
        else:
            parsed = Scenario.from_dict(scenario)  # raises on bad payloads
            parsed.validate()
            job_name = parsed.name
        return self._enqueue(
            Job(
                id=self._next_id(),
                kind="scenario",
                name=job_name,
                tenant=tenant,
                scale=scale,
                seed=seed,
                workers=workers,
                scenario=dict(scenario) if scenario is not None else None,
                cache=bool(cache or cache_dir),
                cache_dir=cache_dir,
            )
        )

    def submit_sweep(
        self,
        name: str,
        scale: float = 1.0,
        seed: int = 0,
        workers: int = 1,
        tenant: str = "anonymous",
        cache: bool = False,
        cache_dir: Optional[str] = None,
    ) -> Job:
        """Enqueue one registered sweep (validated synchronously)."""
        get_sweep(name)  # raises KeyError on unknown names
        return self._enqueue(
            Job(
                id=self._next_id(),
                kind="sweep",
                name=name,
                tenant=tenant,
                scale=scale,
                seed=seed,
                workers=workers,
                cache=bool(cache or cache_dir),
                cache_dir=cache_dir,
            )
        )

    def _next_id(self) -> str:
        return f"job-{next(self._ids):06d}"

    def _enqueue(self, job: Job) -> Job:
        with self._lock:
            if self._closed:
                raise JobQueueFull("the job queue is shutting down")
            queued = sum(
                1 for j in self._jobs.values() if j.status == JobStates.QUEUED
            )
            if queued >= self.config.capacity:
                raise JobQueueFull(
                    f"job queue is full ({queued} queued, "
                    f"capacity {self.config.capacity})"
                )
            # repro: allow[DET001] -- wall-clock submit timestamp, client-facing
            job.submitted_at = time.time()
            # share the manager lock so job views and lifecycle
            # commits serialise on the same monitor.
            job.lock = self._lock
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._queue.put(job.id)
        return job

    # -- inspection ---------------------------------------------------------
    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        """Every job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def in_flight_for(self, tenant: str) -> int:
        """Queued + running jobs of one tenant (the quota input)."""
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.tenant == tenant and job.status in JobStates.IN_FLIGHT
            )

    def wait(self, job_id: str, timeout_s: float = 60.0) -> Job:
        """Block until a job finishes (in-process convenience)."""
        job = self.get(job_id)
        deadline = time.monotonic() + timeout_s
        while not job.finished:
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {job.status}")
            time.sleep(0.02)
        return job

    # -- cancellation -------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Request cancellation; cooperative, so a running job stops at
        its next step boundary and keeps the steps it finished.

        Terminal jobs are left untouched (the event is *not* set — a
        cancel landing after completion must not relabel a finished
        job). Cancelling a sweep that is already running raises
        :class:`JobNotCancellable`: ``run_sweep`` is one atomic call
        with no boundary to stop at, and a structured refusal beats
        accepting a request that would be silently ignored."""
        job = self.get(job_id)
        with self._lock:
            if job.finished:
                return job
            if job.kind == "sweep" and job.status == JobStates.RUNNING:
                raise JobNotCancellable(job)
            job.cancel_event.set()
            if job.status == JobStates.QUEUED:
                # never started: nothing partial to keep.
                job.status = JobStates.CANCELLED
                # repro: allow[DET001] -- wall-clock finish timestamp, client-facing
                job.finished_at = time.time()
        return job

    def close(self) -> None:
        """Stop accepting work and wake the workers to exit."""
        with self._lock:
            self._closed = True
        for _ in self._workers:
            self._queue.put(None)

    # -- execution ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self._jobs.get(job_id)
            if job is None or job.finished:  # cancelled while queued
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            if job.finished:
                return
            job.status = JobStates.RUNNING
            # repro: allow[DET001] -- wall-clock start timestamp, client-facing
            job.started_at = time.time()
        try:
            if job.kind == "scenario":
                observed_cancel = self._run_scenario_job(job)
            else:
                observed_cancel = self._run_sweep_job(job)
            # a job is cancelled only if the cancellation was actually
            # observed (a step/chain was skipped because of it). A
            # cancel that lands after the last step finished changes
            # nothing: the job completed, so it is done.
            status = JobStates.CANCELLED if observed_cancel else JobStates.DONE
        except Exception as error:  # the job fails; the server never does
            error_view = {"type": type(error).__name__, "message": str(error)}
            status = JobStates.FAILED
        else:
            error_view = None
        with self._lock:
            job.error = error_view if status == JobStates.FAILED else job.error
            job.status = status
            # repro: allow[DET001] -- wall-clock finish timestamp, client-facing
            job.finished_at = time.time()

    def _run_scenario_job(self, job: Job) -> bool:
        """Run one scenario job; returns True iff cancellation was
        observed (at least one step/chain was skipped because of it)."""
        from ..experiments.golden import render_result  # late: heavy import

        if job.scenario is not None:
            runner = ScenarioRunner(Scenario.from_dict(job.scenario))
        else:
            runner = get_definition(job.name).runner()
        plan = runner.plan(scale=job.scale, seed=job.seed)
        runner.validate(plan)
        stop = job.cancel_event.is_set
        if job.workers > 1:
            backend = ProcessPoolBackend(workers=job.workers, stop=stop)
        else:
            backend = ContainedSerialBackend(stop=stop)
        if job.cache:
            backend = CachingBackend(
                backend, OutcomeCache(resolve_cache_dir(job.cache_dir))
            )
        outcomes = runner.execute(plan, backend=backend)
        result = runner.collect(plan, outcomes)
        failures = [
            failure_view(outcome) for outcome in outcomes if is_failure(outcome)
        ]
        with self._lock:
            job.failures = failures
            job.result = jsonify(result.as_dict())
            job.trace = render_result(result)
            if job.cache:
                job.cache_hits = backend.stats.hits
                job.cache_misses = backend.stats.misses
        return any(f.get("error_type") == "JobCancelled" for f in failures)

    def _run_sweep_job(self, job: Job) -> bool:
        # sweeps fan out whole variants; cancellation applies only
        # while queued (run_sweep is one atomic call) — cancel() raises
        # JobNotCancellable once the sweep is running.
        outcome = run_sweep(
            job.name,
            scale=job.scale,
            seed=job.seed,
            workers=job.workers,
            cache_dir=resolve_cache_dir(job.cache_dir) if job.cache else None,
        )
        failures = [
            {
                "variant": failed.name,
                "error_type": failed.error_type,
                "error": failed.error,
            }
            for failed in outcome.failed
        ]
        with self._lock:
            job.result = jsonify(outcome.as_dict())
            job.failures = failures
            if job.cache:
                job.cache_hits = outcome.cache_hits
                job.cache_misses = outcome.cache_misses
        return False
