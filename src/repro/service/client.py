"""A small stdlib client for the scenario service.

:class:`ServiceClient` speaks the envelope protocol over
``urllib.request`` — no dependency beyond the standard library, so the
same class backs ``repro client``, the tests and
``examples/service_client.py``. Methods return the envelope's ``data``
directly; a non-ok envelope raises :class:`ServiceError` carrying the
HTTP status, the structured error and any partial ``data`` that
survived (a failed job's result still holds its table fragments).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional
from urllib import error as urlerror
from urllib import parse as urlparse
from urllib import request as urlrequest

from .envelope import is_envelope
from .jobs import JobStates


class ServiceError(RuntimeError):
    """A non-ok envelope (or transport failure) from the service."""

    def __init__(self, status: int, error: Optional[Dict], data=None):
        self.status = status
        self.error = error or {}
        self.data = data
        self.error_type = self.error.get("type", "ServiceError")
        super().__init__(
            f"[{status}] {self.error_type}: "
            f"{self.error.get('message', 'request failed')}"
        )


class ServiceClient:
    """One service endpoint, one tenant, envelope-native."""

    def __init__(
        self, base_url: str, tenant: Optional[str] = None, timeout_s: float = 30.0
    ):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout_s = timeout_s

    # -- transport ----------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        query: Optional[Dict] = None,
    ):
        url = f"{self.base_url}{path}"
        if query:
            url += "?" + urlparse.urlencode(query)
        headers = {"Content-Type": "application/json"}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        data = json.dumps(body).encode("utf-8") if body is not None else None
        req = urlrequest.Request(url, data=data, headers=headers, method=method)
        try:
            with urlrequest.urlopen(req, timeout=self.timeout_s) as response:
                status = response.status
                payload = json.loads(response.read().decode("utf-8"))
        except urlerror.HTTPError as http_error:
            # 4xx/5xx still carry an envelope body; surface it.
            status = http_error.code
            try:
                payload = json.loads(http_error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = None
        except urlerror.URLError as net_error:
            raise ServiceError(
                0, {"type": "Unreachable", "message": str(net_error.reason)}
            ) from net_error
        if not is_envelope(payload):
            raise ServiceError(
                status,
                {"type": "BadEnvelope", "message": f"non-envelope body: {payload!r}"},
            )
        if not payload["ok"]:
            raise ServiceError(status, payload["error"], data=payload["data"])
        return payload["data"]

    # -- catalogue ----------------------------------------------------------
    def health(self) -> Dict:
        return self._call("GET", "/v1/health")

    def scenarios(self) -> List[Dict]:
        return self._call("GET", "/v1/scenarios")

    def describe_scenario(
        self, name: str, scale: float = 1.0, seed: int = 0
    ) -> Dict:
        return self._call(
            "GET", f"/v1/scenarios/{name}", query={"scale": scale, "seed": seed}
        )

    def sweeps(self) -> List[Dict]:
        return self._call("GET", "/v1/sweeps")

    def describe_sweep(self, name: str) -> Dict:
        return self._call("GET", f"/v1/sweeps/{name}")

    # -- submission ---------------------------------------------------------
    @staticmethod
    def _run_body(
        scale: float,
        seed: int,
        workers: int,
        cache: bool,
        cache_dir: Optional[str],
        **extra,
    ) -> Dict:
        body = dict(extra, scale=scale, seed=seed, workers=workers)
        # only ship the cache knobs when asked — older servers reject
        # unknown run fields.
        if cache or cache_dir:
            body["cache"] = True
            if cache_dir:
                body["cache_dir"] = cache_dir
        return body

    def submit_scenario(
        self,
        name: str,
        scale: float = 1.0,
        seed: int = 0,
        workers: int = 1,
        cache: bool = False,
        cache_dir: Optional[str] = None,
    ) -> Dict:
        return self._call(
            "POST",
            f"/v1/scenarios/{name}/runs",
            body=self._run_body(scale, seed, workers, cache, cache_dir),
        )

    def submit_inline(
        self,
        scenario: Dict,
        scale: float = 1.0,
        seed: int = 0,
        workers: int = 1,
        cache: bool = False,
        cache_dir: Optional[str] = None,
    ) -> Dict:
        """Submit an ad-hoc ``Scenario.from_dict`` payload."""
        return self._call(
            "POST",
            "/v1/runs",
            body=self._run_body(
                scale, seed, workers, cache, cache_dir, scenario=scenario
            ),
        )

    def submit_sweep(
        self,
        name: str,
        scale: float = 1.0,
        seed: int = 0,
        workers: int = 1,
        cache: bool = False,
        cache_dir: Optional[str] = None,
    ) -> Dict:
        return self._call(
            "POST",
            f"/v1/sweeps/{name}/runs",
            body=self._run_body(scale, seed, workers, cache, cache_dir),
        )

    # -- job lifecycle ------------------------------------------------------
    def jobs(self) -> List[Dict]:
        return self._call("GET", "/v1/jobs")

    def job(self, job_id: str) -> Dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        """The finished job's full payload (result + trace + failures).

        Raises :class:`ServiceError` while the job is unfinished (409)
        and for a *failed* job — whose partial payload rides on the
        exception's ``data``.
        """
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict:
        return self._call("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.2
    ) -> Dict:
        """Poll until the job reaches a terminal state; returns its
        status view (fetch :meth:`result` for the payload)."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job["status"] in JobStates.TERMINAL:
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout_s:g}s"
                )
            time.sleep(poll_s)
